// Worker API: the HTTP surface remote care-worker processes drive.
// Claim hands out a job under a time-bounded lease; heartbeat renews
// it; complete/fail end it; the artifact endpoints move checkpoint
// files so a job can migrate between machines. Every mutating call
// quotes the lease's fencing token (the job's attempt number,
// journaled in the claim event) and is rejected with a typed
// stale_lease error the moment the caller is no longer the current
// holder — no matter how delayed, duplicated, or reordered the
// request was by the network.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// API error codes, machine-readable in every worker API error body.
const (
	CodeStaleLease        = "stale_lease"
	CodeUnknownJob        = "unknown_job"
	CodeBadRequest        = "bad_request"
	CodeBadTransition     = "bad_transition"
	CodeDuplicateTerminal = "duplicate_terminal"
	CodeDraining          = "draining"
	CodeInternal          = "internal"
	CodeArtifactRejected  = "artifact_rejected"
	CodeArtifactNotFound  = "artifact_not_found"
)

// APIError is the JSON error body every worker API failure carries.
// Code is stable for programmatic dispatch; Error is for humans.
type APIError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// writeAPIError renders err with a machine-readable code derived from
// the queue's typed errors.
func writeAPIError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, CodeInternal
	switch {
	case errors.Is(err, ErrStaleLease):
		status, code = http.StatusConflict, CodeStaleLease
	case errors.Is(err, ErrDuplicateTerminal):
		status, code = http.StatusConflict, CodeDuplicateTerminal
	case errors.Is(err, ErrUnknownJob):
		status, code = http.StatusNotFound, CodeUnknownJob
	case errors.Is(err, ErrBadTransition):
		status, code = http.StatusConflict, CodeBadTransition
	}
	writeJSON(w, status, APIError{Code: code, Error: err.Error()})
}

// ---- request/response shapes (shared with the worker client) ----

// ClaimRequest asks for the next pending job under a fresh lease.
type ClaimRequest struct {
	// Worker is the caller's stable name (fencing identifies a lease by
	// worker + token).
	Worker string `json:"worker"`
	// TTLMS is the requested lease duration (0 = server default; the
	// server clamps outlandish values).
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Idem makes the claim idempotent: a retry quoting the same key
	// gets the original lease back instead of a second job.
	Idem string `json:"idem,omitempty"`
}

// ClaimResponse carries the leased job. The lease token is
// Job.Attempts; the worker quotes it on every subsequent call.
type ClaimResponse struct {
	Job Job `json:"job"`
	// HasArtifact tells the worker a checkpoint artifact exists to
	// download before starting (a previous holder got part way).
	HasArtifact bool `json:"has_artifact"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Token  int    `json:"token"`
}

// HeartbeatResponse reports the renewed lease and any server-side
// cancel waiting for the holder to unwind.
type HeartbeatResponse struct {
	LeaseMSLeft     int64 `json:"lease_ms_left"`
	CancelRequested bool  `json:"cancel_requested"`
}

// CompleteRequest commits a job's canonical result under its lease.
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Job    string          `json:"job"`
	Token  int             `json:"token"`
	Result json.RawMessage `json:"result"`
}

// FailRequest ends a lease without a result. Kind selects the
// transition: "requeue" (transient; job becomes claimable again),
// "fail" (permanent), or "cancel" (acknowledging a requested cancel).
type FailRequest struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Token  int    `json:"token"`
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
}

// ---- handlers ----

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Error: err.Error()})
		return false
	}
	return true
}

func (s *Server) handleWorkerClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !decodeInto(w, r, &req) {
		return
	}
	s.leases.Touch(req.Worker)
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, APIError{Code: CodeDraining, Error: "server is draining"})
		return
	}
	jb, ok, err := s.q.ClaimRemote(req.Worker, req.TTLMS, req.Idem)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	resp := ClaimResponse{Job: jb}
	if f, _, err := s.artifacts.Open(jb.ID); err == nil {
		f.Close()
		resp.HasArtifact = true
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	s.leases.Touch(req.Worker)
	jb, err := s.q.Renew(req.Job, req.Worker, req.Token)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{
		LeaseMSLeft:     jb.LeaseMSLeft,
		CancelRequested: jb.CancelRequested,
	})
}

func (s *Server) handleWorkerComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	s.leases.Touch(req.Worker)
	if len(req.Result) == 0 {
		writeJSON(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Error: "complete needs a result"})
		return
	}
	if err := s.q.CompleteRemote(req.Job, req.Worker, req.Token, req.Result); err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "done"})
}

func (s *Server) handleWorkerFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decodeInto(w, r, &req) {
		return
	}
	s.leases.Touch(req.Worker)
	if err := s.q.FailRemote(req.Job, req.Worker, req.Token, req.Kind, req.Reason); err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": req.Kind})
}

// leaseParams pulls the worker/token query parameters the artifact
// endpoints fence on.
func leaseParams(r *http.Request) (worker string, token int, err error) {
	worker = r.URL.Query().Get("worker")
	if worker == "" {
		return "", 0, errors.New("missing worker parameter")
	}
	if _, err := fmt.Sscanf(r.URL.Query().Get("token"), "%d", &token); err != nil {
		return "", 0, fmt.Errorf("bad token parameter: %v", err)
	}
	return worker, token, nil
}

// handleArtifactPut accepts a checkpoint upload from the job's
// current lease holder. The body must be a structurally complete
// checkpoint container; anything torn or damaged is rejected before
// it can shadow the previous artifact. (If the lease expires during
// a slow upload the artifact may still land — that is harmless: every
// uploaded checkpoint sits on the job's deterministic checkpoint
// schedule, so the worst case is redone work, never wrong bytes. The
// fencing that matters — complete — is strict.)
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	worker, token, err := leaseParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Error: err.Error()})
		return
	}
	s.leases.Touch(worker)
	if err := s.q.CheckLease(id, worker, token); err != nil {
		writeAPIError(w, err)
		return
	}
	n, err := s.artifacts.Put(id, r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, APIError{Code: CodeArtifactRejected, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "stored", "bytes": n})
}

// handleArtifactGet streams the job's checkpoint artifact to its
// current lease holder (the resume path after a job migrates).
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	worker, token, err := leaseParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, APIError{Code: CodeBadRequest, Error: err.Error()})
		return
	}
	s.leases.Touch(worker)
	if err := s.q.CheckLease(id, worker, token); err != nil {
		writeAPIError(w, err)
		return
	}
	f, size, err := s.artifacts.Open(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, APIError{Code: CodeArtifactNotFound, Error: err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(size))
	// A mid-stream failure here tears the download; the client's CRC
	// verification catches it and the claim is retried.
	io.Copy(w, f)
}
