package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"care/careapi"
	"care/internal/faultinject"
	"care/internal/harness"
	"care/internal/sim"
	"care/internal/telemetry"
)

// maxPanicRequeues bounds how many executions a job that keeps
// panicking its worker gets before it is failed permanently; without
// the cap a deterministic panic would loop forever.
const maxPanicRequeues = 5

// pool runs queue jobs on a fixed set of worker goroutines. Each job
// executes through the harness supervisor — checkpointed, retried
// with jittered backoff, fault-injectable — under a context that the
// drain path cancels, so SIGTERM interrupts every running simulation
// at its next checkpoint boundary and requeues it durably.
type pool struct {
	q        *Queue
	dataDir  string
	workers  int
	inj      *faultinject.Injector // server crash classes (may be nil)
	faults   *faultinject.Config   // simulation-level faults for every job
	registry *telemetry.Registry
	report   *harness.Report

	drainCtx context.Context
	drain    context.CancelFunc
	wg       sync.WaitGroup

	mu        sync.Mutex
	cancels   map[string]context.CancelFunc
	cancelled map[string]bool
	status    []WorkerStatus
}

// WorkerStatus is one worker's health snapshot for /healthz (careapi
// type): what it is running and when it last made a state transition
// (the last-progress watermark — a worker stuck long past it is
// wedged).
type WorkerStatus = careapi.WorkerStatus

func newPool(q *Queue, dataDir string, workers int, inj *faultinject.Injector, faults *faultinject.Config, registry *telemetry.Registry, report *harness.Report) *pool {
	// The drain context is cancelled with sim.ErrDrain as its cause:
	// running simulations then stop at their next *scheduled*
	// checkpoint boundary instead of hard-interrupting, which keeps
	// the requeued job's eventual result bit-identical to an
	// undisturbed run.
	ctx, cancelCause := context.WithCancelCause(context.Background())
	p := &pool{
		q: q, dataDir: dataDir, workers: workers,
		inj: inj, faults: faults, registry: registry, report: report,
		drainCtx: ctx, drain: func() { cancelCause(sim.ErrDrain) },
		cancels:   make(map[string]context.CancelFunc),
		cancelled: make(map[string]bool),
		status:    make([]WorkerStatus, workers),
	}
	now := time.Now()
	for i := range p.status {
		p.status[i] = WorkerStatus{Worker: i, LastProgress: now}
	}
	return p
}

// start launches the workers.
func (p *pool) start() {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go func(id int) {
			defer p.wg.Done()
			for {
				jb, ok := p.q.Claim()
				if !ok {
					return
				}
				p.setStatus(id, jb.ID, true)
				p.runJob(jb)
				p.setStatus(id, "", false)
			}
		}(i)
	}
}

func (p *pool) setStatus(worker int, job string, busy bool) {
	p.mu.Lock()
	p.status[worker] = WorkerStatus{Worker: worker, Job: job, Busy: busy, LastProgress: time.Now()}
	p.mu.Unlock()
}

// Status returns a snapshot of every worker.
func (p *pool) Status() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]WorkerStatus(nil), p.status...)
}

// CancelJob interrupts a running job and marks it for a cancel (not
// requeue) commit when the worker unwinds. Returns false if the job
// is not currently running.
func (p *pool) CancelJob(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	cancel, ok := p.cancels[id]
	if !ok {
		return false
	}
	p.cancelled[id] = true
	cancel()
	return true
}

// wasCancelled consumes the job's cancel mark.
func (p *pool) wasCancelled(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.cancelled[id]
	delete(p.cancelled, id)
	return c
}

// jobOptions builds the harness supervision options for one job. Each
// job gets a private checkpoint directory (two jobs with identical
// specs must not share resume state) and a telemetry tag prefix so
// its interval series are attributable in the shared registry.
func (p *pool) jobOptions(jb Job) (*harness.Options, error) {
	ckptDir := filepath.Join(p.dataDir, "checkpoints", jb.ID)
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	faults := p.faults
	if jb.Spec.Faults != "" {
		cfg, err := faultinject.ParseSpec(jb.Spec.Faults)
		if err != nil {
			return nil, err
		}
		faults = cfg.SimOnly()
	}
	// Seed the retry jitter per job so concurrently retrying workers
	// spread out even when their specs (and thus tags) are identical.
	h := fnv.New64a()
	h.Write([]byte(jb.ID))
	return &harness.Options{
		Measure:           jb.Spec.Measure,
		Warmup:            jb.Spec.Warmup,
		MaxAttempts:       jb.Spec.Retries + 1,
		CheckpointDir:     ckptDir,
		CheckpointEvery:   jb.Spec.CheckpointEvery,
		ResumeExisting:    true,
		RetryJitterSeed:   h.Sum64(),
		Faults:            faults,
		Report:            p.report,
		TelemetryRegistry: p.registry,
		TelemetryTag:      jb.ID + "/",
	}, nil
}

// runJob executes one claimed job to a durable transition: complete,
// fail, cancel, or requeue. Every exit path commits exactly one event.
func (p *pool) runJob(jb Job) {
	ctx, cancel := context.WithCancel(p.drainCtx)
	if t := jb.Spec.Timeout(); t > 0 {
		ctx, cancel = context.WithTimeout(p.drainCtx, t)
	}
	p.mu.Lock()
	p.cancels[jb.ID] = cancel
	p.mu.Unlock()
	defer func() {
		cancel()
		p.mu.Lock()
		delete(p.cancels, jb.ID)
		delete(p.cancelled, jb.ID)
		p.mu.Unlock()
	}()

	// A worker panic (injected or real) must not take the pool down:
	// contain it and requeue the job, failing it permanently if it
	// keeps happening.
	defer func() {
		if r := recover(); r != nil {
			reason := fmt.Sprintf("worker panic: %v", r)
			if jb.Attempts > maxPanicRequeues {
				p.q.Fail(jb.ID, reason)
				return
			}
			p.q.Requeue(jb.ID, reason)
		}
	}()

	if p.inj != nil {
		p.inj.BeginServerJob()
	}
	opts, err := p.jobOptions(jb)
	if err != nil {
		p.q.Fail(jb.ID, err.Error())
		return
	}
	r, err := opts.Supervise(ctx, RunSpecOf(&jb.Spec))
	switch {
	case err == nil:
		bytes, merr := MarshalResult(r)
		if merr != nil {
			p.q.Fail(jb.ID, merr.Error())
			return
		}
		p.q.Complete(jb.ID, bytes)
	case p.wasCancelled(jb.ID):
		p.q.CancelRunning(jb.ID)
	case errors.Is(err, context.DeadlineExceeded):
		p.q.Fail(jb.ID, fmt.Sprintf("timeout after %s: %v", jb.Spec.Timeout(), err))
	case errors.Is(err, sim.ErrInterrupted) && p.drainCtx.Err() != nil:
		// Drain: the final checkpoint is on disk; the next claim (by a
		// future server instance) resumes from it.
		p.q.Requeue(jb.ID, "drained: server shutting down")
	default:
		p.q.Fail(jb.ID, err.Error())
	}
}

// Drain interrupts every running job (each writes a final checkpoint
// and requeues durably) and waits for the workers to exit, up to ctx.
// The queue must already be stopped so idle workers return.
func (p *pool) Drain(ctx context.Context) error {
	p.drain()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}
