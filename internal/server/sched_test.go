package server

import (
	"fmt"
	"path/filepath"
	"testing"
)

// specWith builds a valid spec carrying scheduling fields.
func specWith(priority int, c *Constraints) JobSpec {
	s := testSpec()
	s.Priority = priority
	s.Constraints = c
	return s
}

func mustSubmit(t *testing.T, q *Queue, spec JobSpec) Job {
	t.Helper()
	jb, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return jb
}

func claimAs(t *testing.T, q *Queue, worker string, caps *WorkerCaps) (Job, bool) {
	t.Helper()
	jb, ok, err := q.ClaimFor(worker, 60_000, "", caps)
	if err != nil {
		t.Fatal(err)
	}
	return jb, ok
}

func TestClaimRespectsConstraints(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	big := mustSubmit(t, q, specWith(0, &Constraints{MinCores: 8}))
	labeled := mustSubmit(t, q, specWith(0, &Constraints{Labels: []string{"ssd"}}))
	free := mustSubmit(t, q, specWith(0, nil))

	// A caps-less worker (or the local pool) only sees unconstrained work.
	jb, ok := claimAs(t, q, "anon", nil)
	if !ok || jb.ID != free.ID {
		t.Fatalf("nil-caps worker claimed %+v ok=%v, want %s", jb, ok, free.ID)
	}
	if _, ok := claimAs(t, q, "anon", nil); ok {
		t.Fatal("nil-caps worker claimed a constrained job")
	}

	// A small machine without the label can't take either leftover.
	if _, ok := claimAs(t, q, "small", &WorkerCaps{Cores: 4}); ok {
		t.Fatal("4-core worker claimed an 8-core job")
	}
	// The labeled machine takes the labeled job, the big one the rest.
	jb, ok = claimAs(t, q, "tagged", &WorkerCaps{Cores: 2, Labels: []string{"ssd", "numa"}})
	if !ok || jb.ID != labeled.ID {
		t.Fatalf("labeled worker claimed %+v ok=%v, want %s", jb, ok, labeled.ID)
	}
	jb, ok = claimAs(t, q, "big", &WorkerCaps{Cores: 16, MemMB: 32768})
	if !ok || jb.ID != big.ID {
		t.Fatalf("big worker claimed %+v ok=%v, want %s", jb, ok, big.ID)
	}
}

func TestClaimOrdersByPriorityThenDemandThenAge(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	low := mustSubmit(t, q, specWith(-5, nil))
	easyHigh := mustSubmit(t, q, specWith(10, nil))
	hardHigh := mustSubmit(t, q, specWith(10, &Constraints{MinCores: 8}))
	mid := mustSubmit(t, q, specWith(3, nil))

	caps := &WorkerCaps{Cores: 16}
	// Equal priority: the demanding job goes first to the capable
	// worker, leaving the easy one for anyone; then strict priority
	// order, with age breaking ties.
	want := []string{hardHigh.ID, easyHigh.ID, mid.ID, low.ID}
	for i, id := range want {
		jb, ok := claimAs(t, q, "big", caps)
		if !ok || jb.ID != id {
			t.Fatalf("claim %d = %+v ok=%v, want %s", i, jb, ok, id)
		}
	}
}

func TestPriorityReordersWithoutDisturbingCustody(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	first := mustSubmit(t, q, specWith(0, nil))
	jb, ok := claimAs(t, q, "w1", &WorkerCaps{Cores: 4})
	if !ok || jb.ID != first.ID {
		t.Fatalf("setup claim = %+v ok=%v", jb, ok)
	}
	// A higher-priority submission jumps the pending queue but must
	// never preempt the running job's lease.
	urgent := mustSubmit(t, q, specWith(50, nil))
	mustSubmit(t, q, specWith(0, nil))
	jb2, ok := claimAs(t, q, "w2", &WorkerCaps{Cores: 4})
	if !ok || jb2.ID != urgent.ID {
		t.Fatalf("urgent claim = %+v ok=%v, want %s", jb2, ok, urgent.ID)
	}
	got, err := q.Get(first.ID)
	if err != nil || got.State != StateRunning || got.Worker != "w1" {
		t.Fatalf("running job disturbed by priority submit: %+v err=%v", got, err)
	}
	if err := q.CompleteRemote(first.ID, "w1", jb.Attempts, []byte(`{}`)); err != nil {
		t.Fatalf("original holder fenced out: %v", err)
	}
}

// TestFleetDrainsWithoutStarvation runs an unequal two-worker fleet
// over a mixed backlog: every job must land on a worker that satisfies
// its constraints, and the constrained minority must not be starved by
// the unconstrained majority even though the big worker is also
// eligible for every easy job.
func TestFleetDrainsWithoutStarvation(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	constrained := map[string]bool{}
	for i := 0; i < 12; i++ {
		var c *Constraints
		if i%3 == 0 {
			c = &Constraints{MinCores: 8}
		}
		jb := mustSubmit(t, q, specWith(i%2, c))
		constrained[jb.ID] = c != nil
	}

	smallCaps := &WorkerCaps{Cores: 4, Slots: 1}
	bigCaps := &WorkerCaps{Cores: 16, Slots: 2}
	placed := map[string]string{} // job → worker
	for worker, caps := range map[string]*WorkerCaps{"small": smallCaps, "big": bigCaps} {
		for {
			jb, ok := claimAs(t, q, worker, caps)
			if !ok {
				break
			}
			placed[jb.ID] = worker
			if err := q.CompleteRemote(jb.ID, worker, jb.Attempts, []byte(fmt.Sprintf(`{"by":%q}`, worker))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(placed) != 12 {
		t.Fatalf("fleet drained %d of 12 jobs: %v", len(placed), placed)
	}
	for id, worker := range placed {
		if constrained[id] && worker != "big" {
			t.Fatalf("constrained job %s placed on %s", id, worker)
		}
	}
	for _, jb := range q.Jobs() {
		if jb.State != StateDone {
			t.Fatalf("job %s starved in state %s", jb.ID, jb.State)
		}
	}
}

func TestSubmitValidatesSchedulingFields(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	if _, err := q.Submit(specWith(101, nil)); err == nil {
		t.Fatal("priority 101 accepted")
	}
	if _, err := q.Submit(specWith(0, &Constraints{MinCores: -1})); err == nil {
		t.Fatal("negative min_cores accepted")
	}
	if _, err := q.Submit(specWith(0, &Constraints{Labels: []string{""}})); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestListPaginatesAndFilters(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	var ids []string
	for i := 0; i < 5; i++ {
		spec := testSpec()
		if i%2 == 0 {
			spec.Campaign = "even"
		}
		jb := mustSubmit(t, q, spec)
		ids = append(ids, jb.ID)
	}
	jb, ok := claimAs(t, q, "w1", nil)
	if !ok {
		t.Fatal("claim failed")
	}
	if err := q.CompleteRemote(jb.ID, "w1", jb.Attempts, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	// Cursor pagination walks every job exactly once, in ID order.
	var walked []string
	cursor := ""
	for {
		page, total, next := q.List("", "", 2, cursor)
		if total != 5 {
			t.Fatalf("total = %d, want 5", total)
		}
		for _, p := range page {
			walked = append(walked, p.ID)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if len(walked) != 5 {
		t.Fatalf("pagination walked %v, want all of %v", walked, ids)
	}
	for i, id := range ids {
		if walked[i] != id {
			t.Fatalf("pagination order %v, want %v", walked, ids)
		}
	}

	// State and campaign filters compose with paging; totals count the
	// filtered set, not the page.
	page, total, _ := q.List(StateDone, "", 10, "")
	if total != 1 || len(page) != 1 || page[0].ID != jb.ID {
		t.Fatalf("state filter = %v total=%d", page, total)
	}
	page, total, _ = q.List("", "even", 2, "")
	if total != 3 || len(page) != 2 {
		t.Fatalf("campaign filter page=%v total=%d", page, total)
	}
	page, total, _ = q.List(StatePending, "even", 10, "")
	for _, p := range page {
		if p.ID == jb.ID {
			t.Fatalf("done job leaked into pending filter: %v", page)
		}
	}
	if total != 3-boolToInt(jb.Spec.Campaign == "even") {
		t.Fatalf("composed filter total=%d page=%v", total, page)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestSchedulingSurvivesRestart proves Campaign/Priority/Constraints
// ride the journal: after reopening, a constrained pending job is
// still invisible to an incapable worker.
func TestSchedulingSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	spec := specWith(7, &Constraints{MinCores: 8})
	spec.Campaign = "restart-proof"
	jb := mustSubmit(t, q, spec)
	q.Close()

	q2 := openTestQueue(t, path)
	got, err := q2.Get(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Priority != 7 || got.Spec.Campaign != "restart-proof" ||
		got.Spec.Constraints == nil || got.Spec.Constraints.MinCores != 8 {
		t.Fatalf("scheduling fields lost across replay: %+v", got.Spec)
	}
	if _, ok := claimAs(t, q2, "small", &WorkerCaps{Cores: 2}); ok {
		t.Fatal("replayed constraint not enforced")
	}
	if jb2, ok := claimAs(t, q2, "big", &WorkerCaps{Cores: 8}); !ok || jb2.ID != jb.ID {
		t.Fatalf("capable claim after replay = %+v ok=%v", jb2, ok)
	}
}
