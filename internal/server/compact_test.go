package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildHistory produces a queue with a few journal-heavy jobs: one
// done after retries, one failed, one cancelled, one pending with
// prior attempts, one live remote lease.
func buildHistory(t *testing.T, path string) map[string]Job {
	t.Helper()
	q := openTestQueue(t, path)
	a, _ := q.Submit(testSpec())
	b, _ := q.Submit(testSpec())
	c, _ := q.Submit(testSpec())
	d, _ := q.Submit(testSpec())
	e, _ := q.Submit(testSpec())

	q.Claim() // a attempt 1
	q.Requeue(a.ID, "injected crash")
	q.Claim() // b attempt 1... claims pop FIFO: order a,b,c,d,e; after requeue, ready = c,d,e,a
	// Simplest to drive by explicit remote claims instead.
	q.Close()

	q2 := openTestQueue(t, path)
	// Reopen replays: a pending (requeued), b pending (implicit requeue
	// of the crashed local run), c/d/e pending.
	complete := func(id string, worker string, result string) {
		t.Helper()
		for {
			jb, ok, err := q2.ClaimRemote(worker, 60_000, "")
			if err != nil || !ok {
				t.Fatalf("claim for %s: ok=%v err=%v", id, ok, err)
			}
			if jb.ID == id {
				if err := q2.CompleteRemote(id, worker, jb.Attempts, []byte(result)); err != nil {
					t.Fatal(err)
				}
				return
			}
			// Not the one we want: requeue and keep cycling.
			if err := q2.FailRemote(jb.ID, worker, jb.Attempts, "requeue", "cycling"); err != nil {
				t.Fatal(err)
			}
		}
	}
	complete(a.ID, "w1", `{"r":"a"}`)
	fail := func(id string) {
		t.Helper()
		for {
			jb, ok, err := q2.ClaimRemote("w1", 60_000, "")
			if err != nil || !ok {
				t.Fatalf("claim for %s: ok=%v err=%v", id, ok, err)
			}
			if jb.ID == id {
				if err := q2.FailRemote(id, "w1", jb.Attempts, "fail", "permanent"); err != nil {
					t.Fatal(err)
				}
				return
			}
			if err := q2.FailRemote(jb.ID, "w1", jb.Attempts, "requeue", "cycling"); err != nil {
				t.Fatal(err)
			}
		}
	}
	fail(b.ID)
	if err := q2.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	// d: leave pending but with accumulated attempts (claim + requeue).
	for {
		jb, ok, err := q2.ClaimRemote("w9", 60_000, "")
		if err != nil || !ok {
			t.Fatalf("claim for %s: ok=%v err=%v", d.ID, ok, err)
		}
		if err := q2.FailRemote(jb.ID, "w9", jb.Attempts, "requeue", "bounced"); err != nil {
			t.Fatal(err)
		}
		if jb.ID == d.ID {
			break
		}
	}
	// e: live remote lease with an idempotency key.
	for {
		jb, ok, err := q2.ClaimRemote("w2", 60_000, "key-e")
		if err != nil || !ok {
			t.Fatalf("claim for %s: ok=%v err=%v", e.ID, ok, err)
		}
		if jb.ID == e.ID {
			break
		}
		if err := q2.FailRemote(jb.ID, "w2", jb.Attempts, "requeue", "cycling"); err != nil {
			t.Fatal(err)
		}
	}

	want := make(map[string]Job)
	for _, jb := range q2.Jobs() {
		want[jb.ID] = jb
	}
	q2.Close()
	return want
}

func sameJob(a, b Job) bool {
	return a.State == b.State && a.Attempts == b.Attempts && a.Worker == b.Worker &&
		string(a.Result) == string(b.Result) && a.Error == b.Error
}

func TestCompactPreservesStateAndFencingTokens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	want := buildHistory(t, path)

	q := openTestQueue(t, path)
	before := q.Seq()
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	if q.Seq() >= before {
		t.Fatalf("compaction did not shrink the journal: seq %d -> %d", before, q.Seq())
	}
	if q.Seq() != 5 {
		t.Fatalf("compacted journal has %d records, want 5 (one per job)", q.Seq())
	}
	// The compacted queue still answers identically.
	for id, w := range want {
		got, err := q.Get(id)
		if err != nil || !sameJob(got, w) {
			t.Fatalf("after compact, %s = %+v err=%v, want %+v", id, got, err, w)
		}
	}
	// Appends continue cleanly on the compacted journal.
	extra, err := q.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	q.Close()

	// A reopen replays the snapshot + the new submit.
	q2 := openTestQueue(t, path)
	for id, w := range want {
		got, err := q2.Get(id)
		if err != nil || !sameJob(got, w) {
			t.Fatalf("after reopen, %s = %+v err=%v, want %+v", id, got, err, w)
		}
	}
	if _, err := q2.Get(extra.ID); err != nil {
		t.Fatal(err)
	}
	// No compaction leftovers on disk.
	for _, side := range []string{path + compactSuffix, path + rotatedSuffix} {
		if _, err := os.Stat(side); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("leftover %s after clean compaction", side)
		}
	}
	// Fencing survives: the pending job with prior attempts re-claims
	// at a HIGHER token than any pre-compaction lease ever held.
	var pendingWithAttempts Job
	for _, w := range want {
		if w.State == StatePending && w.Attempts > 0 && w.Attempts > pendingWithAttempts.Attempts {
			pendingWithAttempts = w
		}
	}
	if pendingWithAttempts.ID == "" {
		t.Fatal("history built no pending job with attempts")
	}
	for {
		jb, ok, err := q2.ClaimRemote("w3", 60_000, "")
		if err != nil || !ok {
			t.Fatalf("claim: ok=%v err=%v", ok, err)
		}
		if jb.ID == pendingWithAttempts.ID {
			if jb.Attempts != pendingWithAttempts.Attempts+1 {
				t.Fatalf("token after compaction = %d, want %d (tokens must never regress)",
					jb.Attempts, pendingWithAttempts.Attempts+1)
			}
			break
		}
		if err := q2.FailRemote(jb.ID, "w3", jb.Attempts, "requeue", "cycling"); err != nil {
			t.Fatal(err)
		}
	}
	// The replayed snapshot also preserved the leased job's
	// idempotency key.
	leased, ok, err := q2.ClaimRemote("w2", 60_000, "key-e")
	if err != nil || !ok || leased.Worker != "w2" {
		t.Fatalf("idempotent claim after compaction = %+v ok=%v err=%v", leased, ok, err)
	}
}

func TestCompactIfWorthwhileThresholds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	for i := 0; i < 4; i++ {
		q.Submit(testSpec())
	}
	q.Close()

	q2 := openTestQueue(t, path) // 4 replayed events, 4 jobs
	seq := q2.Seq()
	// Below the event floor: no rewrite.
	if err := q2.CompactIfWorthwhile(100); err != nil || q2.Seq() != seq {
		t.Fatalf("under-threshold compaction ran (seq %d -> %d, err %v)", seq, q2.Seq(), err)
	}
	// Disabled: no rewrite regardless.
	if err := q2.CompactIfWorthwhile(-1); err != nil || q2.Seq() != seq {
		t.Fatalf("disabled compaction ran (err %v)", err)
	}
	// History barely above the job count is not worth rewriting either
	// (4 events for 4 jobs: the snapshot would be the same size).
	if err := q2.CompactIfWorthwhile(2); err != nil || q2.Seq() != seq {
		t.Fatalf("unprofitable compaction ran (err %v)", err)
	}
	q2.Close()
}

// corruptMidFile flips bytes in the middle of the journal so replay
// hits a damaged record with valid data after it.
func corruptMidFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal too short to corrupt mid-file: %d lines", len(lines))
	}
	lines[1] = strings.Replace(lines[1], journalMagic, "XXXXXXXXX", 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionCrashWindows(t *testing.T) {
	// Each sub-test reconstructs the on-disk state a crash at one point
	// of the compaction protocol leaves behind, then proves the open
	// path recovers the right journal: live -> compact -> rotated ->
	// fresh.
	build := func(t *testing.T) (string, map[string]Job) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal")
		want := buildHistory(t, path)
		return path, want
	}
	verify := func(t *testing.T, path string, want map[string]Job) {
		t.Helper()
		q, err := OpenQueue(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer q.Close()
		for id, w := range want {
			got, err := q.Get(id)
			if err != nil || !sameJob(got, w) {
				t.Fatalf("%s = %+v err=%v, want %+v", id, got, err, w)
			}
		}
		for _, side := range []string{path + compactSuffix, path + rotatedSuffix} {
			if _, err := os.Stat(side); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("recovery left %s behind", side)
			}
		}
	}

	t.Run("crash-mid-snapshot-write", func(t *testing.T) {
		// Step 1 died: live journal intact, torn .compact beside it.
		// The live journal must win and the leftover must be cleaned.
		path, want := build(t)
		if err := os.WriteFile(path+compactSuffix, []byte("CAREJRNL1 1 00000000 {\"op\":\"snapsho"), 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, path, want)
	})

	t.Run("crash-between-renames", func(t *testing.T) {
		// Steps 2-3 split: live renamed to .rotated, complete .compact
		// not yet renamed in. The snapshot must be adopted.
		path, want := build(t)
		q, _ := OpenQueue(path, nil)
		if err := q.Compact(); err != nil {
			t.Fatal(err)
		}
		q.Close()
		// Reconstruct the window: journal -> rotated, compact complete.
		if err := os.Rename(path, path+compactSuffix); err != nil {
			t.Fatal(err)
		}
		// (rotated file: any prior history; rebuild one from scratch.)
		if err := os.WriteFile(path+rotatedSuffix, []byte("CAREJRNL1 1 00000000 torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, path, want)
	})

	t.Run("crash-before-rotated-cleanup", func(t *testing.T) {
		// Step 4 died: snapshot installed as the live journal, stale
		// .rotated still present. Live wins; leftover removed.
		path, want := build(t)
		q, _ := OpenQueue(path, nil)
		if err := q.Compact(); err != nil {
			t.Fatal(err)
		}
		q.Close()
		if err := os.WriteFile(path+rotatedSuffix, []byte("CAREJRNL1 1 00000000 whatever\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, path, want)
	})

	t.Run("live-missing-compact-torn-rotated-intact", func(t *testing.T) {
		// The worst crash: live renamed away AND the compact copy turns
		// out torn (disk died mid-fsync lie). Fall back to the rotated
		// full history.
		path, want := build(t)
		if err := os.Rename(path, path+rotatedSuffix); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+compactSuffix, []byte("CAREJRNL1 1 00000000 {\"op\":\"snapsho"), 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, path, want)
	})

	t.Run("live-corrupt-rotated-intact", func(t *testing.T) {
		// Mid-file damage in the live journal with a full-history
		// fallback available: recover from it instead of refusing.
		path, want := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+rotatedSuffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corruptMidFile(t, path)
		verify(t, path, want)
	})

	t.Run("live-corrupt-no-fallback-refuses", func(t *testing.T) {
		// Mid-file damage with nothing to fall back to must still
		// refuse to start: silently skipping records could resurrect
		// completed jobs.
		path, _ := build(t)
		corruptMidFile(t, path)
		if _, err := OpenQueue(path, nil); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("open of corrupt journal = %v, want ErrJournalCorrupt", err)
		}
	})

	t.Run("nothing-at-all-starts-fresh", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "journal")
		q, err := OpenQueue(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(q.Jobs()); n != 0 {
			t.Fatalf("fresh queue has %d jobs", n)
		}
		q.Close()
	})
}
