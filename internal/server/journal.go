// Package server implements care-server: a long-running daemon that
// executes campaign simulations as durable jobs. Submissions, state
// transitions, and results are committed to an append-only journal
// before they are acknowledged or applied, so a hard kill at any
// instant loses nothing: on restart the journal is replayed, jobs
// caught mid-run resume from their checkpoints, and every job
// completes exactly once with results identical to an uninterrupted
// run.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"

	"care/internal/faultinject"
)

// journalMagic opens every record line. The trailing 1 is the format
// version; replay rejects journals written by a different version.
const journalMagic = "CAREJRNL1"

// ErrJournalCorrupt marks damage in the journal *body*: an unreadable
// record with valid records after it. (An unreadable final record is
// a torn tail from a crash mid-append — that is expected damage, and
// replay silently truncates it instead.)
var ErrJournalCorrupt = errors.New("server: journal corrupt")

// Event is one journal record: a job state transition. The journal is
// the only durable state the server has; everything in memory is a
// replay of these.
type Event struct {
	// Seq is the record's sequence number, strictly increasing by one.
	// It lives in the line framing, not the JSON body; Append and
	// replay fill it in.
	Seq uint64 `json:"-"`
	// Op is the transition: submit, sweep, start, claim, renew,
	// expire, requeue, complete, fail, cancel, or snapshot.
	Op string `json:"op"`
	// Job is the job ID the event applies to ("" on sweep events,
	// which carry IDs instead).
	Job string `json:"job,omitempty"`
	// Spec rides on submit and snapshot events.
	Spec *JobSpec `json:"spec,omitempty"`
	// Specs and IDs ride on sweep events: the whole cross product,
	// committed as one atomic record (IDs[i] is Specs[i]'s job).
	Specs []JobSpec `json:"specs,omitempty"`
	// IDs are the job IDs assigned to Specs, pairwise.
	IDs []string `json:"ids,omitempty"`
	// Attempt is the server-level execution count on start events and
	// the lease fencing token on claim/renew/expire/complete events.
	Attempt int `json:"attempt,omitempty"`
	// Worker names the remote worker, on claim/renew/expire/complete
	// events (and snapshot records of leased jobs).
	Worker string `json:"worker,omitempty"`
	// TTLMS is the granted lease duration, on claim events.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Caps is the claiming worker's registered capability envelope, on
	// claim events. Pure narration: replay derives no state from it,
	// which is also why old journals (no caps field) and new ones
	// replay identically. The scheduling decision it influenced is
	// already fixed by which job the claim record names.
	Caps *WorkerCaps `json:"caps,omitempty"`
	// Idem is the claim's idempotency key: a duplicate or retried
	// claim quoting the same key is answered with the same lease
	// instead of a second job.
	Idem string `json:"idem,omitempty"`
	// Result is the canonical result JSON, on complete events.
	Result json.RawMessage `json:"result,omitempty"`
	// Error rides on fail, requeue, and expire events.
	Error string `json:"error,omitempty"`
	// State is the full job state, on snapshot (compaction) records.
	State string `json:"state,omitempty"`
}

// Journal is the append-only write-ahead log. Append is the commit
// point for every state transition: once it returns, the event is
// durable (fsynced by default) and will be replayed after any crash.
// It is not safe for concurrent use; the queue serialises access
// under its own lock.
type Journal struct {
	f    *os.File
	path string
	seq  uint64
	size int64
	// nosync skips the per-append fsync (tests only; the chaos suite
	// always runs with fsync on).
	nosync bool
	inj    *faultinject.Injector
}

// OpenJournal opens (creating if absent) the journal at path, replays
// every intact record, truncates a torn tail left by a crash
// mid-append, and returns the journal positioned for appending. inj
// may be nil; when set, its server crash classes fire on appends.
func OpenJournal(path string, inj *faultinject.Injector) (*Journal, []Event, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: read journal: %w", err)
	}
	events, good, err := replay(data)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%w (%s): %v", ErrJournalCorrupt, path, err)
	}
	if good < int64(len(data)) {
		// Torn tail: drop the partial record so the next append starts
		// on a clean boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: seek journal: %w", err)
	}
	j := &Journal{f: f, path: path, size: good, inj: inj}
	if n := len(events); n > 0 {
		j.seq = events[n-1].Seq
	}
	return j, events, nil
}

// replay parses records from data, returning the events and the byte
// offset of the first unparseable line. An unparseable *final* line is
// a torn tail (good < len(data), nil error); anything unparseable with
// valid data after it — or a sequence break — is corruption.
func replay(data []byte) (events []Event, good int64, err error) {
	var seq uint64
	off := int64(0)
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		} else {
			// No terminator: a crash cut the final record short.
			return events, off, nil
		}
		ev, perr := parseRecord(line, seq+1)
		if perr != nil {
			if len(rest) == 0 {
				return events, off, nil // torn final record
			}
			return nil, 0, fmt.Errorf("record %d (offset %d): %v", seq+1, off, perr)
		}
		seq = ev.Seq
		events = append(events, ev)
		off += int64(len(line)) + 1
		data = rest
	}
	return events, off, nil
}

// parseRecord decodes one framed line: MAGIC <seq> <crc32hex> <json>.
func parseRecord(line []byte, wantSeq uint64) (Event, error) {
	fields := bytes.SplitN(line, []byte(" "), 4)
	if len(fields) != 4 || string(fields[0]) != journalMagic {
		return Event{}, errors.New("bad framing")
	}
	seq, err := strconv.ParseUint(string(fields[1]), 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad sequence number: %v", err)
	}
	if seq != wantSeq {
		return Event{}, fmt.Errorf("sequence %d, want %d", seq, wantSeq)
	}
	crc, err := strconv.ParseUint(string(fields[2]), 16, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad checksum field: %v", err)
	}
	if got := crc32.ChecksumIEEE(fields[3]); got != uint32(crc) {
		return Event{}, fmt.Errorf("checksum %08x, recorded %08x", got, crc)
	}
	var ev Event
	if err := json.Unmarshal(fields[3], &ev); err != nil {
		return Event{}, fmt.Errorf("bad record body: %v", err)
	}
	ev.Seq = seq
	return ev, nil
}

// Append commits one event: assigns the next sequence number, writes
// the framed record, and fsyncs before returning. Once Append returns
// the transition is durable; callers apply it to in-memory state only
// after this returns (write-ahead ordering). A failed append leaves
// the journal exactly as it was — the sequence number is not consumed
// and any partial bytes are truncated away — so the queue stays
// usable after a refused commit.
func (j *Journal) Append(ev *Event) error {
	if j.inj != nil {
		if err := j.inj.OnJournalAppendAttempt(); err != nil {
			return err
		}
	}
	ev.Seq = j.seq + 1
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("server: encode journal event: %w", err)
	}
	line := fmt.Sprintf("%s %d %08x %s\n", journalMagic, ev.Seq, crc32.ChecksumIEEE(body), body)
	start := j.size
	if _, err := j.f.WriteString(line); err != nil {
		// Roll the file back to the last committed boundary; best
		// effort — replay truncates a torn tail anyway.
		j.f.Truncate(j.size)
		j.f.Seek(j.size, 0)
		return fmt.Errorf("server: append journal: %w", err)
	}
	j.seq++
	j.size += int64(len(line))
	if !j.nosync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("server: sync journal: %w", err)
		}
	}
	if j.inj != nil {
		// Chaos window: the record is durable but not yet acknowledged
		// or applied. A kill here must be closed by replay.
		j.inj.OnJournalAppend(j.f, start, int64(len(line)))
	}
	return nil
}

// Seq returns the sequence number of the last committed event.
func (j *Journal) Seq() uint64 { return j.seq }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
