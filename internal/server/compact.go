// Journal compaction. The journal is append-only, so a long-lived
// server accretes start/renew/requeue history without bound. On a
// clean startup the queue can rewrite it as a *snapshot* journal: one
// record per job carrying its entire replayed state (terminal jobs
// collapse from dozens of events to one; renew chatter disappears).
// Fencing survives compaction because the snapshot preserves each
// job's attempt counter — tokens never regress.
//
// The rewrite is crash-safe by ordering:
//
//  1. write journal.compact (fsync)        — live journal untouched
//  2. rename journal      → journal.rotated (fsync dir)
//  3. rename journal.compact → journal      (fsync dir)
//  4. remove journal.rotated
//
// A crash at any point leaves a recoverable state, resolved by
// openJournalWithFallback: the live journal wins when it is intact; a
// missing or damaged live journal falls back to a fully-intact
// journal.compact (crash between 2 and 3), then to journal.rotated
// (the pre-compaction history), then to a fresh journal.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"care/internal/faultinject"
)

// rotatedSuffix and compactSuffix name the compaction side files.
const (
	rotatedSuffix = ".rotated"
	compactSuffix = ".compact"
)

// openJournalWithFallback opens the journal at path, recovering from
// a compaction crash if one is in evidence. Mid-file corruption with
// no fallback available still refuses to start, exactly as before.
func openJournalWithFallback(path string, inj *faultinject.Injector) (*Journal, []Event, error) {
	rotated := path + rotatedSuffix
	compact := path + compactSuffix
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		// No live journal. Either this is a genuinely fresh data dir, or
		// a compaction crashed between its two renames. Adopt the newest
		// usable side file; fall through to fresh if neither exists.
		switch {
		case journalIntact(compact):
			if err := os.Rename(compact, path); err != nil {
				return nil, nil, fmt.Errorf("server: adopt compacted journal: %w", err)
			}
		case journalIntact(rotated):
			if err := os.Rename(rotated, path); err != nil {
				return nil, nil, fmt.Errorf("server: restore rotated journal: %w", err)
			}
		}
		os.Remove(compact)
		os.Remove(rotated)
		return OpenJournal(path, inj)
	}
	jnl, events, err := OpenJournal(path, inj)
	if err == nil {
		// Live journal wins; drop compaction leftovers (a stale .compact
		// from a crash mid-step-1, or a .rotated from a crash mid-step-4).
		os.Remove(compact)
		os.Remove(rotated)
		return jnl, events, nil
	}
	if !errors.Is(err, ErrJournalCorrupt) {
		return nil, nil, err
	}
	// The live journal is damaged mid-file. Only a compaction crash
	// leaves fallbacks around; without one, refuse to start as before
	// (silently skipping records could revive completed work).
	for _, alt := range []string{compact, rotated} {
		if !journalIntact(alt) {
			continue
		}
		if rerr := os.Rename(alt, path); rerr != nil {
			return nil, nil, fmt.Errorf("server: recover journal from %s: %w", alt, rerr)
		}
		os.Remove(compact)
		os.Remove(rotated)
		return OpenJournal(path, inj)
	}
	return nil, nil, err
}

// journalIntact reports whether path holds a journal that replays
// completely — every record parses and there is no torn tail. (The
// bar is higher than OpenJournal's: a fallback candidate with a torn
// tail is itself suspect, so it is skipped rather than trimmed.)
func journalIntact(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return false
	}
	_, good, err := replay(data)
	return err == nil && good == int64(len(data))
}

// CompactIfWorthwhile compacts the journal when the replayed history
// is at least minEvents records and at least twice the size of the
// snapshot that would replace it. minEvents <= 0 disables compaction.
func (q *Queue) CompactIfWorthwhile(minEvents int) error {
	if minEvents <= 0 {
		return nil
	}
	q.mu.Lock()
	worthwhile := q.replayedEvents >= minEvents && q.replayedEvents >= 2*len(q.jobs)
	q.mu.Unlock()
	if !worthwhile {
		return nil
	}
	return q.Compact()
}

// Compact rewrites the journal as a snapshot of live state: one
// snapshot record per job, in submission order. Call on startup,
// after replay and before the queue is shared with workers.
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jnl == nil {
		return errors.New("server: compact on closed queue")
	}
	path := q.jnl.path
	compact := path + compactSuffix
	rotated := path + rotatedSuffix

	// Step 1: write the snapshot journal beside the live one.
	f, err := os.OpenFile(compact, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: compact: %w", err)
	}
	var seq uint64
	var size int64
	for _, id := range q.order {
		jb := q.jobs[id]
		seq++
		ev := Event{
			Seq: seq, Op: opSnapshot, Job: id, Spec: &jb.Spec,
			State: jb.State, Attempt: jb.Attempts, Worker: jb.Worker,
			TTLMS: jb.LeaseTTLMS, Result: jb.Result, Error: jb.Error,
			Idem: q.idemByJob[id],
		}
		line, err := frameEvent(&ev)
		if err != nil {
			f.Close()
			os.Remove(compact)
			return err
		}
		if _, err := f.WriteString(line); err != nil {
			f.Close()
			os.Remove(compact)
			return fmt.Errorf("server: compact write: %w", err)
		}
		size += int64(len(line))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(compact)
		return fmt.Errorf("server: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(compact)
		return fmt.Errorf("server: compact close: %w", err)
	}

	// Steps 2+3: swap the snapshot into place, keeping the history as
	// the fallback until the swap is fully durable.
	if err := os.Rename(path, rotated); err != nil {
		os.Remove(compact)
		return fmt.Errorf("server: compact rotate: %w", err)
	}
	if err := fsyncDir(filepath.Dir(path)); err != nil {
		return err
	}
	if err := os.Rename(compact, path); err != nil {
		// The live journal is gone but rotated holds everything; the
		// fallback path recovers it on the next open. Surface the error.
		return fmt.Errorf("server: compact swap: %w", err)
	}
	if err := fsyncDir(filepath.Dir(path)); err != nil {
		return err
	}

	// Re-point the queue's journal handle at the snapshot file.
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("server: compact reopen: %w", err)
	}
	if _, err := nf.Seek(size, 0); err != nil {
		nf.Close()
		return fmt.Errorf("server: compact seek: %w", err)
	}
	old := q.jnl
	q.jnl = &Journal{f: nf, path: path, seq: seq, size: size, nosync: old.nosync, inj: old.inj}
	old.f.Close()

	// Step 4: the snapshot is durable; the history can go.
	os.Remove(rotated)
	q.replayedEvents = int(seq)
	return nil
}

// frameEvent renders one journal line exactly as Append would.
func frameEvent(ev *Event) (string, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return "", fmt.Errorf("server: encode journal event: %w", err)
	}
	return fmt.Sprintf("%s %d %08x %s\n", journalMagic, ev.Seq, crc32.ChecksumIEEE(body), body), nil
}

// fsyncDir makes a just-renamed directory entry durable. Sync errors
// are swallowed: some filesystems refuse fsync on directories, and
// the renames themselves already happened.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
