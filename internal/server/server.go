package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"care/careapi"
	"care/internal/faultinject"
	"care/internal/harness"
	"care/internal/telemetry"
)

// Config configures a care-server instance.
type Config struct {
	// Addr is the listen address (e.g. "127.0.0.1:7777"; ":0" picks a
	// free port — read it back with Addr()).
	Addr string
	// DataDir holds the journal, per-job checkpoint directories, and
	// the telemetry stream. It is created if absent.
	DataDir string
	// Workers is the local worker-pool size (0 = 2).
	Workers int
	// NoLocalWorkers runs the server queue-only: jobs execute solely on
	// remote care-worker processes over the worker API.
	NoLocalWorkers bool
	// LeaseCheckEvery is the lease-expiry sweep period (0 = 1s).
	LeaseCheckEvery time.Duration
	// CompactMinEvents triggers a startup journal compaction once the
	// replayed history reaches this many records (0 = 512 default,
	// negative disables compaction).
	CompactMinEvents int
	// Faults configures fault injection: the server-level crash
	// classes act on this process (chaos testing); the simulation
	// classes are passed into every job.
	Faults *faultinject.Config
	// DrainTimeout bounds a graceful shutdown's wait for running jobs
	// to reach their next checkpoint (0 = 30s).
	DrainTimeout time.Duration
	// NoSync skips journal fsyncs (unit tests only).
	NoSync bool
}

// Request/response shapes live in package careapi; the server keeps
// its historical names as aliases so the wire surface has exactly one
// definition.
type (
	SubmitRequest     = careapi.SubmitRequest
	Health            = careapi.Health
	DegradationReport = careapi.DegradationReport
)

// Server is the care-server daemon: an HTTP API over a durable job
// queue and a checkpoint-supervised worker pool.
type Server struct {
	cfg         Config
	q           *Queue
	pool        *pool
	artifacts   *ArtifactStore
	leases      *leaseManager
	hub         *eventHub
	inj         *faultinject.Injector
	registry    *telemetry.Registry
	report      *harness.Report
	http        *http.Server
	ln          net.Listener
	journalPath string
	started     time.Time
	draining    atomic.Bool
	serveErr    chan error
}

// New creates the server: it ensures DataDir, opens and replays the
// journal (restoring every job committed before the last shutdown or
// crash), and prepares — but does not start — the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.DataDir == "" {
		return nil, errors.New("server: config needs a data directory")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	var inj *faultinject.Injector
	if cfg.Faults.Enabled() {
		inj = faultinject.New(*cfg.Faults)
	}
	journalPath := filepath.Join(cfg.DataDir, "journal")
	q, err := OpenQueue(journalPath, inj)
	if err != nil {
		return nil, err
	}
	// Compact on clean startup, before the queue is shared: a long
	// campaign's journal collapses to one snapshot record per job.
	minEvents := cfg.CompactMinEvents
	if minEvents == 0 {
		minEvents = 512
	}
	if err := q.CompactIfWorthwhile(minEvents); err != nil {
		q.Close()
		return nil, err
	}
	if cfg.NoSync {
		q.jnl.nosync = true
	}
	artifacts, err := NewArtifactStore(filepath.Join(cfg.DataDir, "artifacts"))
	if err != nil {
		q.Close()
		return nil, err
	}
	registry := telemetry.NewRegistry()
	report := harness.NewReport()
	s := &Server{
		cfg:         cfg,
		q:           q,
		artifacts:   artifacts,
		hub:         newEventHub(),
		inj:         inj,
		registry:    registry,
		report:      report,
		journalPath: journalPath,
		serveErr:    make(chan error, 1),
	}
	q.SetNotify(s.hub.publish)
	s.leases = newLeaseManager(q, artifacts, cfg.LeaseCheckEvery)
	if !cfg.NoLocalWorkers {
		s.pool = newPool(q, cfg.DataDir, cfg.Workers, inj, cfg.Faults.SimOnly(), registry, report)
	}
	s.http = &http.Server{Handler: s.routes()}
	return s, nil
}

// routes builds the API surface.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/report", s.handleReport)
	mux.HandleFunc("POST /api/v1/worker/claim", s.handleWorkerClaim)
	mux.HandleFunc("POST /api/v1/worker/heartbeat", s.handleWorkerHeartbeat)
	mux.HandleFunc("POST /api/v1/worker/complete", s.handleWorkerComplete)
	mux.HandleFunc("POST /api/v1/worker/fail", s.handleWorkerFail)
	mux.HandleFunc("PUT /api/v1/worker/jobs/{id}/artifact", s.handleArtifactPut)
	mux.HandleFunc("GET /api/v1/worker/jobs/{id}/artifact", s.handleArtifactGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Start listens and serves in the background and launches the worker
// pool. It returns once the listener is bound, so Addr() is valid.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	s.started = time.Now()
	s.leases.start()
	if s.pool != nil {
		s.pool.start()
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
	}()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// ServeErr delivers a fatal Serve error, if one occurred.
func (s *Server) ServeErr() <-chan error { return s.serveErr }

// Shutdown drains the server gracefully: readiness flips to 503, the
// queue stops handing out jobs, every running simulation is
// interrupted at its next checkpoint boundary and durably requeued,
// then the HTTP listener closes and the journal is synced shut. A
// subsequent New on the same DataDir resumes the requeued jobs from
// their checkpoints.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.q.Stop()
	s.leases.Stop()
	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	var errs []error
	if s.pool != nil {
		if err := s.pool.Drain(drainCtx); err != nil {
			errs = append(errs, err)
		}
	}
	// Streams must end before http.Shutdown: it waits for in-flight
	// handlers, and an SSE handler only returns when its subscription
	// channel closes (or its client disconnects).
	s.hub.Close()
	if err := s.http.Shutdown(ctx); err != nil {
		errs = append(errs, err)
	}
	if err := s.flushTelemetry(); err != nil {
		errs = append(errs, err)
	}
	if err := s.q.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// flushTelemetry streams every per-job interval series collected this
// process lifetime to DataDir/telemetry.jsonl (appending, so series
// survive across restarts alongside the journal).
func (s *Server) flushTelemetry() error {
	if s.registry.Len() == 0 {
		return nil
	}
	f, err := os.OpenFile(filepath.Join(s.cfg.DataDir, "telemetry.jsonl"),
		os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: telemetry flush: %w", err)
	}
	defer f.Close()
	return s.registry.WriteTo(telemetry.NewJSONL(f))
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders the one versioned error envelope every endpoint
// shares (careapi.Error). The human message keeps the "error" JSON
// key, so pre-envelope clients parsing {"error": ...} still work.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, careapi.Err(code, "%s", err.Error()))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, careapi.CodeDraining, errors.New("server is draining"))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, careapi.CodeBadRequest, fmt.Errorf("bad submission: %w", err))
		return
	}
	specs := req.Specs()
	// Validate the whole sweep before committing any of it, so a bad
	// cell cannot leave a half-submitted cross product behind.
	for i := range specs {
		if err := ValidateSpec(&specs[i]); err != nil {
			writeError(w, http.StatusBadRequest, careapi.CodeBadRequest, err)
			return
		}
	}
	// The whole sweep commits as ONE journal record, so a crash — or a
	// refused append — mid-submission can never leave a partial cross
	// product behind: either every cell is durable and acknowledged,
	// or none is.
	jobs, err := s.q.SubmitSweep(specs)
	if err != nil {
		writeError(w, http.StatusInternalServerError, careapi.CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusCreated, careapi.SubmitResponse{Jobs: jobs})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	limit := 0
	if raw := qs.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, careapi.CodeBadRequest,
				fmt.Errorf("bad limit %q", raw))
			return
		}
		limit = n
	}
	if state := qs.Get("state"); state != "" {
		switch state {
		case StatePending, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			writeError(w, http.StatusBadRequest, careapi.CodeBadRequest,
				fmt.Errorf("unknown state %q", state))
			return
		}
	}
	jobs, total, next := s.q.List(qs.Get("state"), qs.Get("campaign"), limit, qs.Get("cursor"))
	writeJSON(w, http.StatusOK, careapi.ListResponse{Jobs: jobs, Total: total, NextCursor: next})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb, err := s.q.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, careapi.CodeUnknownJob, err)
		return
	}
	writeJSON(w, http.StatusOK, jb)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb, err := s.q.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, careapi.CodeUnknownJob, err)
		return
	}
	switch jb.State {
	case StatePending:
		if err := s.q.Cancel(id); err != nil {
			writeError(w, http.StatusConflict, careapi.CodeBadTransition, err)
			return
		}
	case StateRunning:
		if jb.Worker != "" {
			// Remotely leased: flag the lease; the holder learns on its
			// next heartbeat and acknowledges, or the lease expires into
			// the cancel if the holder never comes back.
			if !s.q.RequestCancelLeased(id) {
				jb, _ = s.q.Get(id)
				writeJSON(w, http.StatusConflict, jb)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			return
		}
		// Interrupt the local worker; it commits the cancel event when
		// the simulation unwinds. Report accepted, not yet terminal.
		if s.pool == nil || !s.pool.CancelJob(id) {
			// Raced with completion: report the terminal state.
			jb, _ = s.q.Get(id)
			writeJSON(w, http.StatusConflict, jb)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		return
	default:
		writeError(w, http.StatusConflict, careapi.CodeBadTransition,
			fmt.Errorf("%w: cancel of %s job %s", ErrBadTransition, jb.State, id))
		return
	}
	jb, _ = s.q.Get(id)
	writeJSON(w, http.StatusOK, jb)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:           "ok",
		Draining:         s.draining.Load(),
		QueueDepth:       s.q.Depth(),
		Jobs:             s.q.Counts(),
		JournalSeq:       s.q.Seq(),
		UptimeSec:        time.Since(s.started).Seconds(),
		ActiveLeases:     s.q.ActiveLeases(),
		LeaseExpirations: s.q.Expirations(),
		Fleet:            s.leases.Fleet(),
		ArtifactCount:    s.artifacts.Count(),
		ArtifactBytes:    s.artifacts.Bytes(),
		SSESubscribers:   s.hub.Count(),
	}
	if s.pool != nil {
		h.Workers = s.pool.Status()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	completed, retried, dropped := s.report.Counts()
	rep := DegradationReport{
		Jobs:       s.q.Counts(),
		JournalSeq: s.q.Seq(),
		Completed:  completed,
		Retried:    retried,
		Dropped:    dropped,
		Summary:    s.report.Summary(),
	}
	if s.inj != nil {
		rep.WorkerPanics = s.inj.Stats().WorkerPanics
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleMetrics serves Prometheus text format: server gauges followed
// by every collected per-job interval series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counts := s.q.Counts()
	for _, state := range []string{StatePending, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "care_server_jobs{state=%q} %d\n", state, counts[state])
	}
	fmt.Fprintf(w, "care_server_queue_depth %d\n", s.q.Depth())
	backlog := s.q.PendingByPriority()
	prios := make([]int, 0, len(backlog))
	for p := range backlog {
		prios = append(prios, p)
	}
	sort.Ints(prios)
	for _, p := range prios {
		fmt.Fprintf(w, "care_server_backlog{priority=\"%d\"} %d\n", p, backlog[p])
	}
	fmt.Fprintf(w, "care_server_sse_subscribers %d\n", s.hub.Count())
	fmt.Fprintf(w, "care_server_journal_seq %d\n", s.q.Seq())
	fmt.Fprintf(w, "care_server_workers %d\n", s.cfg.Workers)
	fmt.Fprintf(w, "care_server_uptime_seconds %f\n", time.Since(s.started).Seconds())
	fmt.Fprintf(w, "care_server_active_leases %d\n", s.q.ActiveLeases())
	fmt.Fprintf(w, "care_server_lease_expirations_total %d\n", s.q.Expirations())
	fmt.Fprintf(w, "care_server_artifact_store_files %d\n", s.artifacts.Count())
	fmt.Fprintf(w, "care_server_artifact_store_bytes %d\n", s.artifacts.Bytes())
	for _, wf := range s.leases.Fleet() {
		fmt.Fprintf(w, "care_server_worker_last_heartbeat_age_seconds{worker=%q} %f\n", wf.Name, wf.LastSeenSec)
		if wf.Caps != nil {
			fmt.Fprintf(w, "care_server_worker_slots{worker=%q} %d\n", wf.Name, wf.Caps.Slots)
		}
	}
	if s.registry.Len() > 0 {
		s.registry.WriteTo(telemetry.NewProm(w))
	}
}
