package server

import (
	"bytes"
	"care/careapi"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startTestServer boots a server on a free port over dir.
func startTestServer(t *testing.T, dir string, workers int) *Server {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", DataDir: dir, Workers: workers, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// tinySubmit is a sweep that finishes in well under a second per job.
func tinySubmit() SubmitRequest {
	return SubmitRequest{
		JobSpec: JobSpec{
			Kind: "spec", Workload: "429.mcf", Cores: 1,
			Scale: 64, Warmup: 1000, Measure: 4000, CheckpointEvery: 1000,
		},
		Policies: []string{"care", "lru"},
	}
}

func waitAllTerminal(t *testing.T, base string, deadline time.Duration) []Job {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		var list careapi.ListResponse
		httpJSON(t, "GET", base+"/api/v1/jobs", nil, &list)
		allDone := len(list.Jobs) > 0
		for _, jb := range list.Jobs {
			if !jb.Terminal() {
				allDone = false
			}
		}
		if allDone {
			return list.Jobs
		}
		if time.Now().After(stop) {
			t.Fatalf("jobs still unfinished after %s: %+v", deadline, list.Jobs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServerRunsSweepToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := startTestServer(t, t.TempDir(), 2)
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()

	var created careapi.SubmitResponse
	if code := httpJSON(t, "POST", base+"/api/v1/jobs", tinySubmit(), &created); code != http.StatusCreated {
		t.Fatalf("submit returned %d", code)
	}
	if len(created.Jobs) != 2 {
		t.Fatalf("sweep created %d jobs, want 2 (care, lru)", len(created.Jobs))
	}
	jobs := waitAllTerminal(t, base, 30*time.Second)
	for _, jb := range jobs {
		if jb.State != StateDone {
			t.Fatalf("job %s ended %s (%s), want done", jb.ID, jb.State, jb.Error)
		}
		var res struct{ Policy string }
		if err := json.Unmarshal(jb.Result, &res); err != nil || res.Policy == "" {
			t.Fatalf("job %s result unparseable: %v (%s)", jb.ID, err, jb.Result)
		}
	}

	// Telemetry: each job contributed a tagged series.
	if s.registry.Len() < 2 {
		t.Fatalf("registry holds %d series, want >= 2", s.registry.Len())
	}
	for _, series := range s.registry.Series() {
		if !strings.HasPrefix(series.Meta.Tag, "j0000") {
			t.Fatalf("series tag %q is not job-prefixed", series.Meta.Tag)
		}
	}

	// Health and metrics reflect the finished campaign.
	var h Health
	httpJSON(t, "GET", base+"/healthz", nil, &h)
	if h.Jobs[StateDone] != 2 || h.QueueDepth != 0 || len(h.Workers) != 2 {
		t.Fatalf("healthz = %+v", h)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), `care_server_jobs{state="done"} 2`) {
		t.Fatalf("metrics missing done gauge:\n%s", metrics.String())
	}

	var rep DegradationReport
	httpJSON(t, "GET", base+"/api/v1/report", nil, &rep)
	if rep.Completed != 2 || rep.Dropped != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestServerValidatesSubmissions(t *testing.T) {
	s := startTestServer(t, t.TempDir(), 1)
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()

	bad := tinySubmit()
	bad.Policies = []string{"care", "no-such-policy"}
	var errBody careapi.Error
	if code := httpJSON(t, "POST", base+"/api/v1/jobs", bad, &errBody); code != http.StatusBadRequest {
		t.Fatalf("invalid sweep returned %d", code)
	}
	// All-or-nothing: the valid cell must not have been committed.
	var list careapi.ListResponse
	httpJSON(t, "GET", base+"/api/v1/jobs", nil, &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("half-submitted sweep: %+v", list.Jobs)
	}
	if code := httpJSON(t, "GET", base+"/api/v1/jobs/j999999", nil, &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown job returned %d", code)
	}
}

func TestServerCancelPendingJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// One worker and two jobs: the second stays pending long enough to
	// cancel while the first runs.
	s := startTestServer(t, t.TempDir(), 1)
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()
	req := tinySubmit()
	req.Warmup, req.Measure, req.CheckpointEvery = 2000, 60000, 4000
	var created careapi.SubmitResponse
	httpJSON(t, "POST", base+"/api/v1/jobs", req, &created)
	victim := created.Jobs[1].ID
	var got Job
	if code := httpJSON(t, "DELETE", base+"/api/v1/jobs/"+victim, nil, &got); code != http.StatusOK {
		t.Fatalf("cancel returned %d", code)
	}
	if got.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", got.State)
	}
	jobs := waitAllTerminal(t, base, 60*time.Second)
	states := map[string]string{}
	for _, jb := range jobs {
		states[jb.ID] = jb.State
	}
	if states[created.Jobs[0].ID] != StateDone || states[victim] != StateCancelled {
		t.Fatalf("final states = %v", states)
	}
}

func TestServerDrainRequeuesAndRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	// Baseline result for the job the drain will interrupt.
	ref := startTestServer(t, t.TempDir(), 1)
	refReq := drainSubmit()
	var refCreated careapi.SubmitResponse
	httpJSON(t, "POST", "http://"+ref.Addr()+"/api/v1/jobs", refReq, &refCreated)
	refJobs := waitAllTerminal(t, "http://"+ref.Addr(), 120*time.Second)
	if refJobs[0].State != StateDone {
		t.Fatalf("baseline job ended %s: %s", refJobs[0].State, refJobs[0].Error)
	}
	ref.Shutdown(context.Background())

	// Instance 1: submit the same job, then drain mid-run.
	s1 := startTestServer(t, dir, 1)
	var created careapi.SubmitResponse
	httpJSON(t, "POST", "http://"+s1.Addr()+"/api/v1/jobs", drainSubmit(), &created)
	id := created.Jobs[0].ID
	// Wait for it to actually start.
	for start := time.Now(); ; {
		jb, err := s1.q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if jb.State == StateRunning {
			break
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("job never started: %+v", jb)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	// The journal must record the drain as a requeue, durably.
	q, err := OpenQueue(dir+"/journal", nil)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := q.Get(id)
	q.Close()
	if err != nil || jb.State != StatePending {
		t.Fatalf("after drain job = %+v err=%v, want pending", jb, err)
	}

	// Instance 2: resumes from the drained checkpoint and finishes
	// with the baseline's exact bytes.
	s2 := startTestServer(t, dir, 1)
	defer s2.Shutdown(context.Background())
	jobs := waitAllTerminal(t, "http://"+s2.Addr(), 120*time.Second)
	if jobs[0].State != StateDone {
		t.Fatalf("resumed job ended %s: %s", jobs[0].State, jobs[0].Error)
	}
	if string(jobs[0].Result) != string(refJobs[0].Result) {
		t.Fatalf("drained+resumed result diverged from uninterrupted run:\n%s\nvs\n%s",
			jobs[0].Result, refJobs[0].Result)
	}
	var h Health
	httpJSON(t, "GET", "http://"+s2.Addr()+"/healthz", nil, &h)
	if h.Jobs[StateDone] != 1 {
		t.Fatalf("healthz after resume = %+v", h)
	}
}

// drainSubmit is a single job big enough to straddle a drain: several
// checkpoint segments of real simulation.
func drainSubmit() SubmitRequest {
	return SubmitRequest{JobSpec: JobSpec{
		Kind: "spec", Workload: "429.mcf", Policy: "care", Cores: 1,
		Scale: 64, Warmup: 2000, Measure: 40000, CheckpointEvery: 4000,
	}}
}

// TestReadyzFlipsWhileDraining needs a running job to hold Shutdown
// open; covered implicitly above, so here just the idle fast path.
func TestReadyzIdle(t *testing.T) {
	s := startTestServer(t, t.TempDir(), 1)
	base := "http://" + s.Addr()
	var body struct{ Status string }
	if code := httpJSON(t, "GET", base+"/readyz", nil, &body); code != http.StatusOK || body.Status != "ready" {
		t.Fatalf("readyz = %d %+v", code, body)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := fetchCode(base + "/readyz"); code != 0 && code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown = %d", code)
	}
}

// fetchCode returns the status code, or 0 on connection error (the
// listener may already be down, which is fine).
func fetchCode(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

var _ = fmt.Sprintf // keep fmt if assertions change
