package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"care/careapi"
)

// sseMsg is one decoded text/event-stream message.
type sseMsg struct {
	name string
	id   string
	data careapi.JobEvent
}

// sseOpen connects to the event stream and pumps decoded messages
// into a channel until the stream ends. Keepalive comments are
// dropped. The returned cancel tears the connection down.
func sseOpen(t *testing.T, url, lastEventID string) (<-chan sseMsg, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream returned %d", resp.StatusCode)
	}
	ch := make(chan sseMsg, 1024)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var msg sseMsg
		var hasData bool
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if hasData {
					ch <- msg
				}
				msg, hasData = sseMsg{}, false
			case strings.HasPrefix(line, "event: "):
				msg.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				msg.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &msg.data) == nil {
					hasData = true
				}
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// nextMsg reads one message or fails the test.
func nextMsg(t *testing.T, ch <-chan sseMsg) sseMsg {
	t.Helper()
	select {
	case msg, ok := <-ch:
		if !ok {
			t.Fatal("stream closed early")
		}
		return msg
	case <-time.After(5 * time.Second):
		t.Fatal("no event within 5s")
	}
	return sseMsg{}
}

// collectUntil drains messages until pred is satisfied, returning
// everything seen (progress messages included).
func collectUntil(t *testing.T, ch <-chan sseMsg, pred func(sseMsg) bool) []sseMsg {
	t.Helper()
	var got []sseMsg
	for {
		msg := nextMsg(t, ch)
		got = append(got, msg)
		if pred(msg) {
			return got
		}
	}
}

func TestSSEStreamsTransitionsLive(t *testing.T) {
	s := startRemoteServer(t, t.TempDir())
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()

	ch, cancel := sseOpen(t, base+"/api/v1/jobs/events", "")
	defer cancel()

	jb, err := s.q.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	claimed, ok, err := s.q.ClaimFor("w1", 60_000, "", &WorkerCaps{Cores: 4})
	if err != nil || !ok {
		t.Fatalf("claim: %v ok=%v", err, ok)
	}
	if _, err := s.q.Renew(jb.ID, "w1", claimed.Attempts, &Progress{Cycles: 123, Phase: "measure"}); err != nil {
		t.Fatal(err)
	}
	if err := s.q.CompleteRemote(jb.ID, "w1", claimed.Attempts, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	msgs := collectUntil(t, ch, func(m sseMsg) bool { return m.data.State == StateDone })
	var states []string
	var sawProgress bool
	for _, m := range msgs {
		if m.name == "progress" {
			sawProgress = true
			if m.id != "" {
				t.Fatalf("progress event carries id %q; ids are reserved for journaled transitions", m.id)
			}
			if m.data.Progress == nil || m.data.Progress.Cycles != 123 {
				t.Fatalf("progress payload = %+v", m.data.Progress)
			}
			continue
		}
		if m.id == "" {
			t.Fatalf("transition %+v has no id", m.data)
		}
		states = append(states, m.data.State)
	}
	if !sawProgress {
		t.Fatal("no progress event on the stream")
	}
	want := []string{StatePending, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", states, want)
		}
	}
}

func TestSSEFiltersByCampaign(t *testing.T) {
	s := startRemoteServer(t, t.TempDir())
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()

	ch, cancel := sseOpen(t, base+"/api/v1/jobs/events?campaign=alpha", "")
	defer cancel()

	specA := testSpec()
	specA.Campaign = "alpha"
	specB := testSpec()
	specB.Campaign = "beta"
	if _, err := s.q.Submit(specB); err != nil {
		t.Fatal(err)
	}
	jbA, err := s.q.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	msg := nextMsg(t, ch)
	if msg.data.Job != jbA.ID || msg.data.Campaign != "alpha" {
		t.Fatalf("filtered stream delivered %+v", msg.data)
	}
}

func TestSSERejectsBadCursor(t *testing.T) {
	s := startRemoteServer(t, t.TempDir())
	defer s.Shutdown(context.Background())
	base := "http://" + s.Addr()
	for _, bad := range []string{"x", "1.", "1.x", "-3"} {
		req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/jobs/events", nil)
		req.Header.Set("Last-Event-ID", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var apiErr careapi.Error
		json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || apiErr.Code != careapi.CodeBadRequest {
			t.Fatalf("cursor %q: %d %+v", bad, resp.StatusCode, apiErr)
		}
	}
}

// TestSSEResumeLosslessAcrossRestart is the streaming tentpole's
// durability proof: a subscriber cut off by a server death reconnects
// with its Last-Event-ID against a fresh instance on the same journal
// and observes every transition it missed — committed before or after
// the restart — exactly once.
func TestSSEResumeLosslessAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := startRemoteServer(t, dir)
	base := "http://" + s1.Addr()

	ch, cancel := sseOpen(t, base+"/api/v1/jobs/events?after=0", "")
	defer cancel()

	specs := []JobSpec{testSpec(), testSpec()}
	jobs, err := s1.q.SubmitSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	c1, ok, err := s1.q.ClaimFor("w1", 60_000, "", nil)
	if err != nil || !ok {
		t.Fatalf("claim: %v ok=%v", err, ok)
	}
	if err := s1.q.CompleteRemote(c1.ID, "w1", c1.Attempts, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	// Phase 1: both submits, one claim, one complete.
	seen := map[string]careapi.JobEvent{}
	lastID := ""
	msgs := collectUntil(t, ch, func(m sseMsg) bool { return m.data.State == StateDone })
	for _, m := range msgs {
		if m.id == "" {
			continue
		}
		if _, dup := seen[m.id]; dup {
			t.Fatalf("duplicate event id %s before restart", m.id)
		}
		seen[m.id] = m.data
		lastID = m.id
	}
	if len(seen) != 4 {
		t.Fatalf("phase 1 saw %d transitions, want 4", len(seen))
	}

	// The server dies mid-stream. The subscriber's channel closes.
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, open := <-ch; open {
		// Drain whatever was buffered; the channel must close shortly.
		for range ch {
		}
	}

	// A new instance on the same journal makes more transitions while
	// the subscriber is still disconnected.
	s2 := startRemoteServer(t, dir)
	defer s2.Shutdown(context.Background())
	base2 := "http://" + s2.Addr()
	c2, ok, err := s2.q.ClaimFor("w2", 60_000, "", nil)
	if err != nil || !ok {
		t.Fatalf("post-restart claim: %v ok=%v", err, ok)
	}
	if err := s2.q.CompleteRemote(c2.ID, "w2", c2.Attempts, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	// Reconnect with the pre-restart cursor: the journal replays the
	// missed claim+complete, then the stream goes live for the cancel.
	ch2, cancel2 := sseOpen(t, base2+"/api/v1/jobs/events", lastID)
	defer cancel2()
	third, err := s2.q.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	msgs = collectUntil(t, ch2, func(m sseMsg) bool { return m.data.Job == third.ID })
	for _, m := range msgs {
		if m.id == "" {
			continue
		}
		if _, dup := seen[m.id]; dup {
			t.Fatalf("event id %s delivered twice across the resume", m.id)
		}
		seen[m.id] = m.data
	}
	// Full picture: 2 sweep submits + claim/complete per finished job
	// + the third submit = 7 distinct transitions, none lost.
	if len(seen) != 7 {
		t.Fatalf("resume saw %d distinct transitions, want 7: %v", len(seen), seen)
	}
	doneJobs := map[string]bool{}
	for _, ev := range seen {
		if ev.State == StateDone {
			doneJobs[ev.Job] = true
		}
	}
	if len(doneJobs) != 2 || !doneJobs[jobs[0].ID] || !doneJobs[jobs[1].ID] {
		t.Fatalf("completes observed for %v, want both sweep jobs", doneJobs)
	}
}
