package server

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"care/internal/faultinject"
)

func TestClaimRemoteGrantsLease(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	jb, _ := q.Submit(testSpec())
	got, ok, err := q.ClaimRemote("w1", 5000, "")
	if err != nil || !ok {
		t.Fatalf("ClaimRemote = %+v ok=%v err=%v", got, ok, err)
	}
	if got.ID != jb.ID || got.State != StateRunning || got.Worker != "w1" ||
		got.Attempts != 1 || got.LeaseTTLMS != 5000 {
		t.Fatalf("leased job = %+v", got)
	}
	if got.LeaseMSLeft <= 0 || got.LeaseMSLeft > 5000 {
		t.Fatalf("LeaseMSLeft = %d, want (0, 5000]", got.LeaseMSLeft)
	}
	// Nothing left to claim.
	if _, ok, _ := q.ClaimRemote("w2", 5000, ""); ok {
		t.Fatal("second claim got a job from an empty queue")
	}
}

func TestClaimRemoteIdempotencyKeyReturnsSameLease(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	q.Submit(testSpec())
	q.Submit(testSpec())
	first, ok, err := q.ClaimRemote("w1", 5000, "key-1")
	if err != nil || !ok {
		t.Fatal(err)
	}
	seq := q.Seq()
	// The response was "lost"; the retried claim quotes the same key
	// and must get the same lease back without a new journal event.
	again, ok, err := q.ClaimRemote("w1", 5000, "key-1")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if again.ID != first.ID || again.Attempts != first.Attempts {
		t.Fatalf("idempotent re-claim = %s token %d, want %s token %d",
			again.ID, again.Attempts, first.ID, first.Attempts)
	}
	if q.Seq() != seq {
		t.Fatalf("idempotent re-claim appended journal events (%d -> %d)", seq, q.Seq())
	}
	// A different key claims the next job, not the same one.
	other, ok, err := q.ClaimRemote("w1", 5000, "key-2")
	if err != nil || !ok || other.ID == first.ID {
		t.Fatalf("fresh claim = %+v ok=%v err=%v", other, ok, err)
	}
}

func TestClaimRemoteIdempotencySurvivesReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	q.Submit(testSpec())
	first, _, _ := q.ClaimRemote("w1", 5000, "key-1")
	q.Close()

	q2 := openTestQueue(t, path)
	again, ok, err := q2.ClaimRemote("w1", 5000, "key-1")
	if err != nil || !ok || again.ID != first.ID || again.Attempts != first.Attempts {
		t.Fatalf("post-replay idempotent claim = %+v ok=%v err=%v (want %s token %d)",
			again, ok, err, first.ID, first.Attempts)
	}
}

func TestCompleteRemoteIsIdempotentForWinningLease(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	jb, _ := q.Submit(testSpec())
	got, _, _ := q.ClaimRemote("w1", 5000, "")
	if err := q.CompleteRemote(jb.ID, "w1", got.Attempts, []byte(`{"r":1}`)); err != nil {
		t.Fatal(err)
	}
	seq := q.Seq()
	// The complete response was lost; the retry must succeed without a
	// second journal event.
	if err := q.CompleteRemote(jb.ID, "w1", got.Attempts, []byte(`{"r":1}`)); err != nil {
		t.Fatalf("retried complete = %v, want nil", err)
	}
	if q.Seq() != seq {
		t.Fatal("retried complete appended a second event")
	}
	// A different lease's complete is fenced, not treated as duplicate.
	if err := q.CompleteRemote(jb.ID, "w2", got.Attempts, []byte(`{"r":2}`)); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("foreign complete = %v, want ErrStaleLease", err)
	}
}

func TestStaleCompleteAfterExpiryAndReclaimIsFenced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	jb, _ := q.Submit(testSpec())
	w1, _, _ := q.ClaimRemote("w1", 50, "") // token 1, 50ms TTL
	// w1 goes silent; the lease manager expires it.
	expired := q.ExpireLeases(time.Now().Add(time.Second))
	if len(expired) != 1 || expired[0] != jb.ID {
		t.Fatalf("expired = %v, want [%s]", expired, jb.ID)
	}
	if q.Expirations() != 1 {
		t.Fatalf("Expirations = %d, want 1", q.Expirations())
	}
	// w2 re-claims at a higher token and completes.
	w2, ok, _ := q.ClaimRemote("w2", 5000, "")
	if !ok || w2.Attempts != 2 {
		t.Fatalf("re-claim = %+v ok=%v, want token 2", w2, ok)
	}
	if err := q.CompleteRemote(jb.ID, "w2", 2, []byte(`{"winner":"w2"}`)); err != nil {
		t.Fatal(err)
	}
	// w1's delayed complete arrives — provably rejected, not applied.
	err := q.CompleteRemote(jb.ID, "w1", w1.Attempts, []byte(`{"winner":"w1"}`))
	if !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale complete = %v, want ErrStaleLease", err)
	}
	got, _ := q.Get(jb.ID)
	if string(got.Result) != `{"winner":"w2"}` || got.Worker != "w2" || got.Attempts != 2 {
		t.Fatalf("job after stale complete = %+v (result %s)", got, got.Result)
	}
	// The journal agrees: exactly one complete event, attributed to
	// w2's lease, and one expire event that ended w1's custody before
	// the re-claim — the full fencing narrative on durable record.
	q.Close()
	jnl, events, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	var completes, expires int
	for _, ev := range events {
		switch ev.Op {
		case opComplete:
			completes++
			if ev.Worker != "w2" || ev.Attempt != 2 {
				t.Fatalf("complete event attributed to %q token %d, want w2/2", ev.Worker, ev.Attempt)
			}
		case opExpire:
			expires++
			if ev.Worker != "w1" || ev.Attempt != 1 {
				t.Fatalf("expire event for %q token %d, want w1/1", ev.Worker, ev.Attempt)
			}
		}
	}
	if completes != 1 || expires != 1 {
		t.Fatalf("journal has %d complete and %d expire events, want 1 and 1", completes, expires)
	}
}

func TestExpiryVersusCompleteRaceIsDeterministic(t *testing.T) {
	// Both orders of the same race, decided by whichever commit takes
	// the queue lock first.
	t.Run("complete-wins", func(t *testing.T) {
		q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
		jb, _ := q.Submit(testSpec())
		q.ClaimRemote("w1", 50, "")
		// The deadline has passed, but the sweep has not run yet: the
		// complete arrives first and wins.
		time.Sleep(60 * time.Millisecond)
		if err := q.CompleteRemote(jb.ID, "w1", 1, []byte(`{"r":1}`)); err != nil {
			t.Fatalf("complete before sweep = %v, want success", err)
		}
		if got := q.ExpireLeases(time.Now()); len(got) != 0 {
			t.Fatalf("sweep after complete expired %v, want nothing", got)
		}
		got, _ := q.Get(jb.ID)
		if got.State != StateDone {
			t.Fatalf("state = %s, want done", got.State)
		}
	})
	t.Run("expiry-wins", func(t *testing.T) {
		q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
		jb, _ := q.Submit(testSpec())
		q.ClaimRemote("w1", 50, "")
		time.Sleep(60 * time.Millisecond)
		if got := q.ExpireLeases(time.Now()); len(got) != 1 {
			t.Fatalf("sweep expired %v, want one", got)
		}
		if err := q.CompleteRemote(jb.ID, "w1", 1, []byte(`{"r":1}`)); !errors.Is(err, ErrStaleLease) {
			t.Fatalf("complete after expiry = %v, want ErrStaleLease", err)
		}
		got, _ := q.Get(jb.ID)
		if got.State != StatePending {
			t.Fatalf("state = %s, want pending (requeued)", got.State)
		}
	})
}

func TestRenewExtendsLeaseAndIsFenced(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	jb, _ := q.Submit(testSpec())
	q.ClaimRemote("w1", 1000, "")
	re, err := q.Renew(jb.ID, "w1", 1, nil)
	if err != nil || re.LeaseMSLeft <= 0 {
		t.Fatalf("renew = %+v err=%v", re, err)
	}
	if _, err := q.Renew(jb.ID, "w1", 7, nil); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("renew with wrong token = %v, want ErrStaleLease", err)
	}
	if _, err := q.Renew(jb.ID, "w2", 1, nil); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("renew by wrong worker = %v, want ErrStaleLease", err)
	}
	if _, err := q.Renew("j999999", "w1", 1, nil); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("renew of unknown job = %v, want ErrUnknownJob", err)
	}
}

func TestFailRemoteKinds(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	a, _ := q.Submit(testSpec())
	b, _ := q.Submit(testSpec())
	c, _ := q.Submit(testSpec())

	q.ClaimRemote("w1", 5000, "") // a, token 1
	if err := q.FailRemote(a.ID, "w1", 1, "requeue", "drained"); err != nil {
		t.Fatal(err)
	}
	ga, _ := q.Get(a.ID)
	if ga.State != StatePending || ga.Error != "drained" {
		t.Fatalf("requeued job = %+v", ga)
	}

	q.ClaimRemote("w1", 5000, "") // b, token 1
	if err := q.FailRemote(b.ID, "w1", 1, "fail", "boom"); err != nil {
		t.Fatal(err)
	}
	gb, _ := q.Get(b.ID)
	if gb.State != StateFailed || gb.Error != "boom" {
		t.Fatalf("failed job = %+v", gb)
	}

	q.ClaimRemote("w1", 5000, "") // c
	// A cancel ack with no cancel pending is a bad transition.
	if err := q.FailRemote(c.ID, "w1", 1, "cancel", ""); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("unsolicited cancel ack = %v, want ErrBadTransition", err)
	}
	if !q.RequestCancelLeased(c.ID) {
		t.Fatal("RequestCancelLeased returned false for a leased job")
	}
	if err := q.FailRemote(c.ID, "w1", 1, "cancel", ""); err != nil {
		t.Fatal(err)
	}
	gc, _ := q.Get(c.ID)
	if gc.State != StateCancelled {
		t.Fatalf("cancelled job = %+v", gc)
	}

	if err := q.FailRemote(a.ID, "w1", 1, "frobnicate", ""); err == nil {
		t.Fatal("unknown fail kind accepted")
	}
}

func TestCancelEdgeCases(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	// Cancel of a job the journal has never seen.
	if err := q.Cancel("j424242"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown = %v, want ErrUnknownJob", err)
	}
	if q.RequestCancelLeased("j424242") {
		t.Fatal("RequestCancelLeased of unknown job returned true")
	}
	// Cancel of a leased job must go through the lease protocol, not
	// the queued-job path.
	jb, _ := q.Submit(testSpec())
	q.ClaimRemote("w1", 50, "")
	if err := q.Cancel(jb.ID); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("queued-cancel of leased job = %v, want ErrBadTransition", err)
	}
	if !q.RequestCancelLeased(jb.ID) {
		t.Fatal("RequestCancelLeased returned false for leased job")
	}
	// The holder never acks; expiry converts into the cancel instead of
	// a requeue.
	expired := q.ExpireLeases(time.Now().Add(time.Second))
	if len(expired) != 1 {
		t.Fatalf("expired = %v", expired)
	}
	got, _ := q.Get(jb.ID)
	if got.State != StateCancelled {
		t.Fatalf("state after expiry-with-cancel = %s, want cancelled", got.State)
	}
	// And the cancelled job is not claimable.
	if _, ok, _ := q.ClaimRemote("w2", 5000, ""); ok {
		t.Fatal("cancelled job was claimable")
	}
}

func TestDuplicateTerminalReplayRefusesToOpen(t *testing.T) {
	// A journal with two terminal events for one job violates exactly-
	// once; opening it must fail loudly rather than silently pick one.
	path := filepath.Join(t.TempDir(), "journal")
	jnl, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	events := []Event{
		{Op: opSubmit, Job: "j000001", Spec: &spec},
		{Op: opStart, Job: "j000001", Attempt: 1},
		{Op: opComplete, Job: "j000001", Result: []byte(`{"r":1}`)},
		{Op: opComplete, Job: "j000001", Result: []byte(`{"r":2}`)},
	}
	for i := range events {
		if err := jnl.Append(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	jnl.Close()
	if _, err := OpenQueue(path, nil); !errors.Is(err, ErrDuplicateTerminal) {
		t.Fatalf("open with duplicate terminal = %v, want ErrDuplicateTerminal", err)
	}
}

func TestRemoteLeaseSurvivesRestartThenExpires(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	jb, _ := q.Submit(testSpec())
	q.ClaimRemote("w1", 200, "")
	q.Close()

	// Restart: the worker may have survived, so the job stays running
	// under its lease, re-armed at a full TTL.
	q2 := openTestQueue(t, path)
	got, _ := q2.Get(jb.ID)
	if !got.Leased() || got.Worker != "w1" || got.Attempts != 1 {
		t.Fatalf("replayed lease = %+v", got)
	}
	if n := q2.ActiveLeases(); n != 1 {
		t.Fatalf("ActiveLeases = %d, want 1", n)
	}
	// Not expirable yet (deadline re-armed at open time)...
	if exp := q2.ExpireLeases(time.Now()); len(exp) != 0 {
		t.Fatalf("immediate sweep expired %v", exp)
	}
	// ...but a worker that never heartbeats again loses it.
	exp := q2.ExpireLeases(time.Now().Add(time.Second))
	if len(exp) != 1 || exp[0] != jb.ID {
		t.Fatalf("overdue sweep expired %v, want [%s]", exp, jb.ID)
	}
	re, ok, _ := q2.ClaimRemote("w2", 5000, "")
	if !ok || re.ID != jb.ID || re.Attempts != 2 {
		t.Fatalf("re-claim after expiry = %+v ok=%v", re, ok)
	}
}

func TestSubmitSweepIsOneAtomicEvent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	specs := []JobSpec{testSpec(), testSpec(), testSpec()}
	jobs, err := q.SubmitSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || jobs[0].ID != "j000001" || jobs[2].ID != "j000003" {
		t.Fatalf("sweep jobs = %+v", jobs)
	}
	if q.Seq() != 1 {
		t.Fatalf("sweep of 3 used %d journal events, want 1", q.Seq())
	}
	q.Close()
	q2 := openTestQueue(t, path)
	if n := len(q2.Jobs()); n != 3 {
		t.Fatalf("replayed sweep has %d jobs, want 3", n)
	}
	if d, err := q2.Submit(testSpec()); err != nil || d.ID != "j000004" {
		t.Fatalf("post-sweep submit = %+v err=%v", d, err)
	}
}

func TestSubmitSweepRefusedAppendLeavesNothing(t *testing.T) {
	// The append-err fault refuses the sweep's single commit; the queue
	// must acknowledge nothing, journal nothing, and stay fully usable.
	path := filepath.Join(t.TempDir(), "journal")
	inj := faultinject.New(faultinject.Config{ServerAppendErrNth: 1})
	q, err := OpenQueue(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.jnl.nosync = true
	specs := []JobSpec{testSpec(), testSpec(), testSpec()}
	if _, err := q.SubmitSweep(specs); !errors.Is(err, faultinject.ErrInjectedAppend) {
		t.Fatalf("sweep with refused append = %v, want ErrInjectedAppend", err)
	}
	if n := len(q.Jobs()); n != 0 {
		t.Fatalf("refused sweep left %d jobs in memory", n)
	}
	// The retry gets the same IDs — nothing was consumed.
	jobs, err := q.SubmitSweep(specs)
	if err != nil || len(jobs) != 3 || jobs[0].ID != "j000001" {
		t.Fatalf("retried sweep = %+v err=%v", jobs, err)
	}
	// And a reopen sees exactly the retried sweep.
	q.Close()
	q2 := openTestQueue(t, path)
	if n := len(q2.Jobs()); n != 3 {
		t.Fatalf("replay after refused+retried sweep has %d jobs, want 3", n)
	}
}
