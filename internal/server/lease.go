// Lease manager: the server-side half of remote job ownership. A
// background sweep expires leases whose holders stopped heartbeating
// (journalling the expiry — the durable moment a worker loses
// custody), retires artifacts of terminal jobs, and tracks when each
// worker was last heard from for the fleet gauges on /healthz and
// /metrics.
package server

import (
	"sort"
	"sync"
	"time"

	"care/careapi"
)

// defaultLeaseCheckEvery is the expiry sweep period.
const defaultLeaseCheckEvery = time.Second

// WorkerFleet is one remote worker's row in /healthz (careapi type):
// when it last contacted the server, over any worker API call, and
// the capability envelope it registered on its most recent claim.
type WorkerFleet = careapi.WorkerFleet

// fleetEntry is the per-worker bookkeeping behind a WorkerFleet row.
type fleetEntry struct {
	last time.Time
	caps *WorkerCaps
}

// leaseManager runs the expiry sweep and owns the fleet bookkeeping.
type leaseManager struct {
	q     *Queue
	store *ArtifactStore
	every time.Duration
	stop  chan struct{}
	done  chan struct{}

	mu      sync.Mutex
	running bool
	fleet   map[string]fleetEntry // worker name → last contact + caps
	cleaned map[string]bool       // terminal jobs whose artifact is gone
}

func newLeaseManager(q *Queue, store *ArtifactStore, every time.Duration) *leaseManager {
	if every <= 0 {
		every = defaultLeaseCheckEvery
	}
	return &leaseManager{
		q:       q,
		store:   store,
		every:   every,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		fleet:   make(map[string]fleetEntry),
		cleaned: make(map[string]bool),
	}
}

// start launches the sweep loop.
func (lm *leaseManager) start() {
	lm.mu.Lock()
	lm.running = true
	lm.mu.Unlock()
	go func() {
		defer close(lm.done)
		tick := time.NewTicker(lm.every)
		defer tick.Stop()
		for {
			select {
			case <-lm.stop:
				return
			case now := <-tick.C:
				lm.sweep(now)
			}
		}
	}()
}

// Stop ends the sweep loop and waits for it to exit. Stopping a
// manager that never started is a no-op (New without Start).
func (lm *leaseManager) Stop() {
	lm.mu.Lock()
	wasRunning := lm.running
	lm.running = false
	lm.mu.Unlock()
	if !wasRunning {
		return
	}
	close(lm.stop)
	<-lm.done
}

// sweep is one pass: expire overdue leases, then drop artifacts that
// terminal jobs no longer need.
func (lm *leaseManager) sweep(now time.Time) {
	lm.q.ExpireLeases(now)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, jb := range lm.q.Jobs() {
		if jb.Terminal() && !lm.cleaned[jb.ID] {
			if lm.store.Remove(jb.ID) == nil {
				lm.cleaned[jb.ID] = true
			}
		}
	}
}

// Touch records a sign of life from worker (any worker API call),
// keeping whatever capabilities it registered earlier.
func (lm *leaseManager) Touch(worker string) {
	if worker == "" {
		return
	}
	lm.mu.Lock()
	entry := lm.fleet[worker]
	entry.last = time.Now()
	lm.fleet[worker] = entry
	lm.mu.Unlock()
}

// TouchCaps records a sign of life plus the capability envelope the
// worker sent on a claim (nil leaves any earlier registration alone —
// a caps-less retry must not unregister the worker).
func (lm *leaseManager) TouchCaps(worker string, caps *WorkerCaps) {
	if worker == "" {
		return
	}
	lm.mu.Lock()
	entry := lm.fleet[worker]
	entry.last = time.Now()
	if caps != nil {
		entry.caps = caps
	}
	lm.fleet[worker] = entry
	lm.mu.Unlock()
}

// Fleet returns per-worker last-contact ages and registered
// capabilities, sorted by name.
func (lm *leaseManager) Fleet() []WorkerFleet {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	now := time.Now()
	out := make([]WorkerFleet, 0, len(lm.fleet))
	for name, entry := range lm.fleet {
		out = append(out, WorkerFleet{
			Name: name, LastSeenSec: now.Sub(entry.last).Seconds(), Caps: entry.caps,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
