package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"care/internal/faultinject"
)

// Queue is the durable job queue: an in-memory state machine whose
// every transition is committed to the journal *before* it is applied
// (write-ahead). Reconstructing a Queue from the journal therefore
// always reproduces the committed state at the moment of a crash —
// minus transitions that never committed, which is exactly the window
// the checkpoint/resume layer closes into exactly-once execution.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jnl    *Journal
	jobs   map[string]*Job
	order  []string // submission order, for listings
	ready  []string // FIFO of claimable pending job IDs
	nextID uint64
	closed bool
}

// OpenQueue opens the journal at path and replays it into a queue.
// Jobs that were running when the previous process died have a start
// event with no terminal event after it; replay moves them back to
// pending (an implicit requeue) so a worker re-claims them and
// resumes from their checkpoints. inj may be nil; when set, its
// server crash classes fire inside journal appends.
func OpenQueue(journalPath string, inj *faultinject.Injector) (*Queue, error) {
	jnl, events, err := OpenJournal(journalPath, inj)
	if err != nil {
		return nil, err
	}
	q := &Queue{jnl: jnl, jobs: make(map[string]*Job)}
	q.cond = sync.NewCond(&q.mu)
	for _, ev := range events {
		if ev.Op == opSubmit {
			if ev.Spec == nil {
				jnl.Close()
				return nil, fmt.Errorf("%w: submit event %d has no spec", ErrJournalCorrupt, ev.Seq)
			}
			q.jobs[ev.Job] = &Job{ID: ev.Job, Spec: *ev.Spec, State: StatePending, Seq: ev.Seq}
			q.order = append(q.order, ev.Job)
			if n := parseJobID(ev.Job); n > q.nextID {
				q.nextID = n
			}
			continue
		}
		jb, ok := q.jobs[ev.Job]
		if !ok {
			jnl.Close()
			return nil, fmt.Errorf("%w: event %d for unsubmitted job %s", ErrJournalCorrupt, ev.Seq, ev.Job)
		}
		if err := jb.apply(ev); err != nil {
			jnl.Close()
			return nil, err
		}
	}
	// Crash recovery: re-pend interrupted jobs and rebuild the ready
	// FIFO in submission order.
	for _, id := range q.order {
		jb := q.jobs[id]
		if jb.State == StateRunning {
			jb.State = StatePending
			jb.Error = "requeued: server restarted mid-run"
		}
		if jb.State == StatePending {
			q.ready = append(q.ready, id)
		}
	}
	return q, nil
}

// parseJobID extracts the numeric part of a "jNNNNNN" job ID (0 if it
// does not parse — replay then just never reuses low IDs).
func parseJobID(id string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimPrefix(id, "j"), 10, 64)
	return n
}

// commit journals ev and then applies it to jb. The append is the
// commit point; if it kills the process (chaos) or fails, the
// in-memory state is untouched. Callers hold q.mu.
func (q *Queue) commit(jb *Job, ev Event) error {
	if err := q.jnl.Append(&ev); err != nil {
		return err
	}
	return jb.apply(ev)
}

// Submit validates the spec, assigns an ID, commits the submission,
// and makes the job claimable. It returns the new job.
func (q *Queue) Submit(spec JobSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, fmt.Errorf("server: queue is shut down")
	}
	q.nextID++
	id := fmt.Sprintf("j%06d", q.nextID)
	ev := Event{Op: opSubmit, Job: id, Spec: &spec}
	if err := q.jnl.Append(&ev); err != nil {
		q.nextID--
		return Job{}, err
	}
	jb := &Job{ID: id, Spec: spec, State: StatePending, Seq: ev.Seq}
	q.jobs[id] = jb
	q.order = append(q.order, id)
	q.ready = append(q.ready, id)
	q.cond.Broadcast()
	return *jb, nil
}

// Claim blocks until a pending job is available (or the queue is
// closed), commits its start event, and returns it for execution.
// The second return is false when the queue has shut down.
func (q *Queue) Claim() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		// closed wins over ready: a drain requeues running jobs, and
		// the draining workers must not immediately re-claim them.
		if q.closed {
			return Job{}, false
		}
		for len(q.ready) > 0 {
			id := q.ready[0]
			q.ready = q.ready[1:]
			jb := q.jobs[id]
			if jb.State != StatePending {
				continue // cancelled while queued
			}
			ev := Event{Op: opStart, Job: id, Attempt: jb.Attempts + 1}
			if err := q.commit(jb, ev); err != nil {
				// The start never committed; leave the job pending and
				// surface the journal failure to whoever shuts us down.
				q.ready = append([]string{id}, q.ready...)
				q.closed = true
				q.cond.Broadcast()
				return Job{}, false
			}
			return *jb, true
		}
		if q.closed {
			return Job{}, false
		}
		q.cond.Wait()
	}
}

// Complete commits the job's canonical result. This append is THE
// exactly-once commit point: a crash before it reruns the job (from
// its checkpoint, deterministically); a crash after it replays as
// done and the job never runs again.
func (q *Queue) Complete(id string, result []byte) error {
	return q.transition(id, StateRunning, Event{Op: opComplete, Job: id, Result: result})
}

// Fail commits a permanent failure (retry budgets exhausted, or the
// spec turned out to be unrunnable).
func (q *Queue) Fail(id string, reason string) error {
	return q.transition(id, StateRunning, Event{Op: opFail, Job: id, Error: reason})
}

// Requeue commits a running job back to pending (drain, worker panic,
// injected crash) so a later claim resumes it.
func (q *Queue) Requeue(id string, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if jb.State != StateRunning {
		return fmt.Errorf("%w: requeue of %s job %s", ErrBadTransition, jb.State, id)
	}
	if err := q.commit(jb, Event{Op: opRequeue, Job: id, Error: reason}); err != nil {
		return err
	}
	q.ready = append(q.ready, id)
	q.cond.Broadcast()
	return nil
}

// Cancel commits a pending job to cancelled. Cancelling a running job
// is coordinated by the pool (which interrupts the worker first and
// then commits); the queue only handles the queued case.
func (q *Queue) Cancel(id string) error {
	return q.transition(id, StatePending, Event{Op: opCancel, Job: id})
}

// CancelRunning commits the cancel event for a job the pool has
// already interrupted.
func (q *Queue) CancelRunning(id string) error {
	return q.transition(id, StateRunning, Event{Op: opCancel, Job: id})
}

// transition commits ev provided the job currently sits in want.
func (q *Queue) transition(id, want string, ev Event) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if jb.State != want {
		return fmt.Errorf("%w: %s of %s job %s", ErrBadTransition, ev.Op, jb.State, id)
	}
	return q.commit(jb, ev)
}

// Get returns a copy of the job.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return *jb, nil
}

// Jobs returns copies of every job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.jobs[id])
	}
	return out
}

// Depth returns the number of claimable pending jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, id := range q.ready {
		if q.jobs[id].State == StatePending {
			n++
		}
	}
	return n
}

// Counts returns the number of jobs in each state.
func (q *Queue) Counts() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	counts := make(map[string]int)
	for _, jb := range q.jobs {
		counts[jb.State]++
	}
	return counts
}

// Seq returns the journal's last committed sequence number.
func (q *Queue) Seq() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.jnl.Seq()
}

// Stop ends claiming: blocked Claim calls return false and workers
// wind down. The journal stays open so in-flight jobs can still
// commit their requeue/complete events while draining.
func (q *Queue) Stop() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Close stops claims and closes the journal. Call only after every
// in-flight job has committed its final transition.
func (q *Queue) Close() error {
	q.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jnl == nil {
		return nil
	}
	err := q.jnl.Close()
	q.jnl = nil
	return err
}
