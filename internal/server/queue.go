package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"care/careapi"
	"care/internal/faultinject"
)

// Queue is the durable job queue: an in-memory state machine whose
// every transition is committed to the journal *before* it is applied
// (write-ahead). Reconstructing a Queue from the journal therefore
// always reproduces the committed state at the moment of a crash —
// minus transitions that never committed, which is exactly the window
// the checkpoint/resume layer closes into exactly-once execution.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jnl    *Journal
	jobs   map[string]*Job
	order  []string // submission order, for listings
	ready  []string // claimable pending job IDs, submission order
	nextID uint64
	closed bool
	// idem maps a claim idempotency key to the job it leased, for as
	// long as that claim is the job's current lease: a duplicated or
	// retried claim gets the same lease back instead of a second job.
	idem map[string]string
	// idemByJob is the reverse index so lease turnover can drop keys.
	idemByJob map[string]string
	// deadlines holds each leased job's wall-clock expiry. Runtime
	// state, never journaled: after a restart the replayed lease is
	// re-armed at now+TTL, giving a surviving worker one full TTL to
	// re-appear before the lease manager expires it.
	deadlines map[string]time.Time
	// notify, when set (SetNotify), receives one careapi.JobEvent per
	// committed transition plus heartbeat progress watermarks. Called
	// under q.mu — implementations must not block.
	notify func(careapi.JobEvent)
	// expirations counts leases the manager expired (a monotonic
	// /metrics counter, reset only by process restart).
	expirations uint64
	// replayedEvents is how many journal records the open replayed
	// (compaction uses it to decide whether rewriting pays off).
	replayedEvents int
}

// defaultLeaseTTL re-arms replayed leases whose events predate the
// TTL field, and bounds claim requests that ask for no (or an
// outlandish) TTL.
const (
	defaultLeaseTTL = 30 * time.Second
	maxLeaseTTL     = 10 * time.Minute
)

// OpenQueue opens the journal at path and replays it into a queue.
// Jobs that were running under a *local* worker when the previous
// process died have a start event with no terminal event after it;
// replay moves them back to pending (an implicit requeue — the local
// pool died with the process). Jobs running under a *remote* lease
// stay running: the worker may well have survived the server restart,
// so its lease is re-armed at now+TTL and the lease manager expires
// it only if the worker never heartbeats again. inj may be nil; when
// set, its server crash classes fire inside journal appends.
func OpenQueue(journalPath string, inj *faultinject.Injector) (*Queue, error) {
	jnl, events, err := openJournalWithFallback(journalPath, inj)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		jnl:            jnl,
		jobs:           make(map[string]*Job),
		idem:           make(map[string]string),
		idemByJob:      make(map[string]string),
		deadlines:      make(map[string]time.Time),
		replayedEvents: len(events),
	}
	q.cond = sync.NewCond(&q.mu)
	for _, ev := range events {
		if err := q.replayEvent(ev); err != nil {
			jnl.Close()
			return nil, err
		}
	}
	// Crash recovery: re-pend locally interrupted jobs, re-arm remote
	// leases, and rebuild the ready list in submission order.
	now := time.Now()
	for _, id := range q.order {
		jb := q.jobs[id]
		switch {
		case jb.State == StateRunning && jb.Worker == "":
			jb.State = StatePending
			jb.Error = "requeued: server restarted mid-run"
		case jb.Leased():
			ttl := time.Duration(jb.LeaseTTLMS) * time.Millisecond
			if ttl <= 0 {
				ttl = defaultLeaseTTL
			}
			q.deadlines[id] = now.Add(ttl)
		}
		if jb.State == StatePending {
			q.ready = append(q.ready, id)
		}
	}
	return q, nil
}

// SetNotify installs the transition listener (the SSE hub). Call
// before the queue is shared; fn runs under q.mu and must not block.
func (q *Queue) SetNotify(fn func(careapi.JobEvent)) {
	q.mu.Lock()
	q.notify = fn
	q.mu.Unlock()
}

// JournalPath returns the path of the backing journal file (the event
// stream reads it for Last-Event-ID resume).
func (q *Queue) JournalPath() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jnl == nil {
		return ""
	}
	return q.jnl.path
}

// replayEvent folds one journal record into the rebuilding queue.
func (q *Queue) replayEvent(ev Event) error {
	switch ev.Op {
	case opSubmit:
		if ev.Spec == nil {
			return fmt.Errorf("%w: submit event %d has no spec", ErrJournalCorrupt, ev.Seq)
		}
		q.addJob(&Job{ID: ev.Job, Spec: *ev.Spec, State: StatePending, Seq: ev.Seq})
		return nil
	case opSweep:
		if len(ev.Specs) == 0 || len(ev.Specs) != len(ev.IDs) {
			return fmt.Errorf("%w: sweep event %d has %d specs for %d ids",
				ErrJournalCorrupt, ev.Seq, len(ev.Specs), len(ev.IDs))
		}
		for i := range ev.Specs {
			q.addJob(&Job{ID: ev.IDs[i], Spec: ev.Specs[i], State: StatePending, Seq: ev.Seq})
		}
		return nil
	case opSnapshot:
		if ev.Spec == nil {
			return fmt.Errorf("%w: snapshot event %d has no spec", ErrJournalCorrupt, ev.Seq)
		}
		jb := &Job{ID: ev.Job, Spec: *ev.Spec}
		if err := applyEvent(jb, ev); err != nil {
			return err
		}
		q.addJob(jb)
		return nil
	}
	jb, ok := q.jobs[ev.Job]
	if !ok {
		return fmt.Errorf("%w: event %d for unsubmitted job %s", ErrJournalCorrupt, ev.Seq, ev.Job)
	}
	if err := q.applyIndexed(jb, ev); err != nil {
		return err
	}
	return nil
}

// addJob registers a freshly created job and advances the ID counter.
func (q *Queue) addJob(jb *Job) {
	q.jobs[jb.ID] = jb
	q.order = append(q.order, jb.ID)
	if n := parseJobID(jb.ID); n > q.nextID {
		q.nextID = n
	}
}

// parseJobID extracts the numeric part of a "jNNNNNN" job ID (0 if it
// does not parse — replay then just never reuses low IDs).
func parseJobID(id string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimPrefix(id, "j"), 10, 64)
	return n
}

// commit journals ev, applies it to jb, and publishes the transition
// to stream subscribers. The append is the commit point; if it kills
// the process (chaos) or fails, the in-memory state is untouched.
// Callers hold q.mu.
func (q *Queue) commit(jb *Job, ev Event) error {
	if err := q.jnl.Append(&ev); err != nil {
		return err
	}
	if err := q.applyIndexed(jb, ev); err != nil {
		return err
	}
	q.publish(jb, ev)
	return nil
}

// publish pushes one committed transition to the stream listener.
// Renew records are custody narration, not state changes — they are
// excluded so heartbeat chatter does not flood subscribers (progress
// rides on dedicated watermark events instead).
func (q *Queue) publish(jb *Job, ev Event) {
	if q.notify == nil || ev.Op == opRenew {
		return
	}
	q.notify(careapi.JobEvent{
		Seq: ev.Seq, Op: ev.Op, Job: jb.ID, State: jb.State,
		Campaign: jb.Spec.Campaign, Worker: ev.Worker, Attempt: ev.Attempt,
		Error: ev.Error,
	})
}

// applyIndexed applies ev to jb and keeps the runtime side state in
// lockstep: the idempotency-key index (a claim registers its key; any
// event that ends that lease's custody retires it), the lease
// deadline, and the progress watermark. Callers hold q.mu (or are
// replaying before the queue is shared).
func (q *Queue) applyIndexed(jb *Job, ev Event) error {
	if err := applyEvent(jb, ev); err != nil {
		return err
	}
	switch ev.Op {
	case opClaim:
		q.dropIdem(jb.ID)
		delete(q.deadlines, jb.ID)
		jb.Progress = nil
		if ev.Idem != "" {
			q.idem[ev.Idem] = jb.ID
			q.idemByJob[jb.ID] = ev.Idem
		}
	case opStart, opExpire, opRequeue, opComplete, opFail, opCancel:
		q.dropIdem(jb.ID)
		delete(q.deadlines, jb.ID)
		jb.Progress = nil
	}
	return nil
}

// dropIdem retires the idempotency key registered for jb's lease.
func (q *Queue) dropIdem(job string) {
	if key, ok := q.idemByJob[job]; ok {
		delete(q.idem, key)
		delete(q.idemByJob, job)
	}
}

// Submit validates the spec, assigns an ID, commits the submission,
// and makes the job claimable. It returns the new job.
func (q *Queue) Submit(spec JobSpec) (Job, error) {
	if err := ValidateSpec(&spec); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, fmt.Errorf("server: queue is shut down")
	}
	q.nextID++
	id := fmt.Sprintf("j%06d", q.nextID)
	ev := Event{Op: opSubmit, Job: id, Spec: &spec}
	if err := q.jnl.Append(&ev); err != nil {
		q.nextID--
		return Job{}, err
	}
	jb := &Job{ID: id, Spec: spec, State: StatePending, Seq: ev.Seq}
	q.jobs[id] = jb
	q.order = append(q.order, id)
	q.ready = append(q.ready, id)
	q.publish(jb, ev)
	q.cond.Broadcast()
	return *jb, nil
}

// SubmitSweep validates every spec, assigns IDs, and commits the
// whole batch as ONE journal record, so a sweep is atomic by
// construction: either every cell of the cross product is durable or
// none is. (The old per-spec loop could crash — or hit an append
// error — half way and leave a partial sweep behind.)
func (q *Queue) SubmitSweep(specs []JobSpec) ([]Job, error) {
	if len(specs) == 0 {
		return nil, errors.New("server: empty sweep")
	}
	for i := range specs {
		if err := ValidateSpec(&specs[i]); err != nil {
			return nil, err
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, fmt.Errorf("server: queue is shut down")
	}
	ev := Event{Op: opSweep, Specs: specs, IDs: make([]string, len(specs))}
	for i := range specs {
		ev.IDs[i] = fmt.Sprintf("j%06d", q.nextID+uint64(i)+1)
	}
	if err := q.jnl.Append(&ev); err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, len(specs))
	for i := range specs {
		jb := &Job{ID: ev.IDs[i], Spec: specs[i], State: StatePending, Seq: ev.Seq}
		q.addJob(jb)
		q.ready = append(q.ready, jb.ID)
		jobs = append(jobs, *jb)
		if q.notify != nil {
			// One atomic journal record fans out to one stream event per
			// job; Sub orders them inside the record ("seq.1", "seq.2", …).
			q.notify(careapi.JobEvent{
				Seq: ev.Seq, Sub: i + 1, Op: opSweep, Job: jb.ID,
				State: StatePending, Campaign: jb.Spec.Campaign,
			})
		}
	}
	q.cond.Broadcast()
	return jobs, nil
}

// ---- claim scheduling ----
//
// Claims are matched, not queued: every claim scans the pending set
// for the best job its caller may run. Higher Priority claims first
// (backpressure: an urgent campaign preempts queue *position*, never
// custody — running jobs are untouched, so exactly-once is preserved
// by construction). Among equal priorities a capable worker is handed
// its most-demanding satisfiable job, leaving unconstrained work for
// less capable workers; final tie-break is ready-list order (arrival,
// with requeues moving to the back), so no job starves behind
// equal-priority peers and a bouncing job cannot livelock the head of
// its class.

// claimBefore reports whether a should be claimed strictly before b.
// Full ties return false: pickReady scans the ready list front to
// back, so the earlier entry keeps the slot.
func claimBefore(a, b *Job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.Spec.Constraints.Demand() > b.Spec.Constraints.Demand()
}

// pickReady compacts q.ready (lazily dropping entries whose job is no
// longer pending) and returns the index of the best claimable job for
// a claimant with caps, or -1 when nothing matches. A nil caps
// claimant (the local pool, or an unregistered remote worker) only
// matches unconstrained jobs. Callers hold q.mu.
func (q *Queue) pickReady(caps *WorkerCaps) int {
	live := q.ready[:0]
	best := -1
	var bestJob *Job
	for _, id := range q.ready {
		jb := q.jobs[id]
		if jb.State != StatePending {
			continue // cancelled while queued
		}
		live = append(live, id)
		if !jb.Spec.Constraints.SatisfiedBy(caps) {
			continue
		}
		if best == -1 || claimBefore(jb, bestJob) {
			best, bestJob = len(live)-1, jb
		}
	}
	q.ready = live
	return best
}

// takeReady removes index i from the ready list and returns its job.
func (q *Queue) takeReady(i int) *Job {
	id := q.ready[i]
	q.ready = append(q.ready[:i], q.ready[i+1:]...)
	return q.jobs[id]
}

// Claim blocks until a pending job is available for the local pool
// (or the queue is closed), commits its start event, and returns it
// for execution. The local pool registers no capabilities, so it only
// executes unconstrained jobs — constrained jobs wait for a remote
// worker that satisfies them. The second return is false when the
// queue has shut down.
func (q *Queue) Claim() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		// closed wins over ready: a drain requeues running jobs, and
		// the draining workers must not immediately re-claim them.
		if q.closed {
			return Job{}, false
		}
		if i := q.pickReady(nil); i >= 0 {
			jb := q.takeReady(i)
			ev := Event{Op: opStart, Job: jb.ID, Attempt: jb.Attempts + 1}
			if err := q.commit(jb, ev); err != nil {
				// The start never committed; leave the job pending and
				// surface the journal failure to whoever shuts us down.
				q.ready = append([]string{jb.ID}, q.ready...)
				q.closed = true
				q.cond.Broadcast()
				return Job{}, false
			}
			return *jb, true
		}
		q.cond.Wait()
	}
}

// ---- remote leases ----
//
// A remote worker's custody of a job is a time-bounded lease,
// identified by the pair (worker, token) where the token is the
// attempt number journaled in the claim event. Every lease operation
// is fenced: it succeeds only while that pair is the job's *current*
// lease. The decisive comparisons all happen under q.mu, so a lease
// expiry racing a complete is settled deterministically by whichever
// commit wins the lock — and the loser is rejected with ErrStaleLease
// rather than applied twice. Leases are per-job, so one worker
// process running several slots holds several independent leases;
// fencing never couples them.

// clampTTL normalises a requested lease TTL.
func clampTTL(ttlMS int64) time.Duration {
	ttl := time.Duration(ttlMS) * time.Millisecond
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	if ttl > maxLeaseTTL {
		ttl = maxLeaseTTL
	}
	return ttl
}

// ClaimRemote hands the next pending unconstrained job to a remote
// worker that registered no capabilities. See ClaimFor.
func (q *Queue) ClaimRemote(worker string, ttlMS int64, idem string) (Job, bool, error) {
	return q.ClaimFor(worker, ttlMS, idem, nil)
}

// ClaimFor hands the best matching pending job to a remote worker
// under a fresh lease, scheduling by priority, then constraint
// demand, then submission order, among the jobs whose constraints
// caps satisfies. It does not block: ok is false when nothing is
// claimable. A non-empty idem key makes the claim idempotent — if the
// key already maps to a lease this worker still holds (the response
// to an earlier identical claim was lost in the network), the same
// job and token are returned without a second journal event.
func (q *Queue) ClaimFor(worker string, ttlMS int64, idem string, caps *WorkerCaps) (Job, bool, error) {
	if worker == "" {
		return Job{}, false, errors.New("server: claim needs a worker name")
	}
	ttl := clampTTL(ttlMS)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, false, nil
	}
	if idem != "" {
		if id, ok := q.idem[idem]; ok {
			jb := q.jobs[id]
			if jb.Leased() && jb.Worker == worker {
				return q.view(jb), true, nil
			}
		}
	}
	if i := q.pickReady(caps); i >= 0 {
		jb := q.takeReady(i)
		ev := Event{
			Op: opClaim, Job: jb.ID, Attempt: jb.Attempts + 1,
			Worker: worker, TTLMS: ttl.Milliseconds(), Idem: idem, Caps: caps,
		}
		if err := q.commit(jb, ev); err != nil {
			q.ready = append([]string{jb.ID}, q.ready...)
			return Job{}, false, err
		}
		q.deadlines[jb.ID] = time.Now().Add(ttl)
		return q.view(jb), true, nil
	}
	return Job{}, false, nil
}

// checkLease validates that (worker, token) is id's current lease.
// Callers hold q.mu. The error spells out which fencing rule fired.
func (q *Queue) checkLease(id, worker string, token int) (*Job, error) {
	jb, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch {
	case jb.Terminal():
		return nil, fmt.Errorf("%w: job %s is already %s (token %d, holder %q)",
			ErrStaleLease, id, jb.State, jb.Attempts, jb.Worker)
	case !jb.Leased():
		return nil, fmt.Errorf("%w: job %s has no active lease (state %s)", ErrStaleLease, id, jb.State)
	case jb.Worker != worker || jb.Attempts != token:
		return nil, fmt.Errorf("%w: job %s is held by %q with token %d, not %q/%d",
			ErrStaleLease, id, jb.Worker, jb.Attempts, worker, token)
	}
	return jb, nil
}

// CheckLease validates a lease without renewing it (artifact up/down-
// loads use it so a partitioned worker cannot overwrite a checkpoint
// it no longer owns).
func (q *Queue) CheckLease(id, worker string, token int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, err := q.checkLease(id, worker, token)
	return err
}

// Renew extends a held lease by its TTL (a heartbeat), optionally
// recording the holder's progress watermark. The watermark is fenced
// exactly like the renewal itself — a stale holder can neither keep
// the lease nor pollute the stream — and is pushed to subscribers as
// an id-less progress event (runtime state, never journaled). The
// returned job copy carries the CancelRequested flag so the holder
// learns it should unwind.
func (q *Queue) Renew(id, worker string, token int, p *Progress) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, err := q.checkLease(id, worker, token)
	if err != nil {
		return Job{}, err
	}
	if err := q.commit(jb, Event{Op: opRenew, Job: id, Attempt: token, Worker: worker}); err != nil {
		return Job{}, err
	}
	q.deadlines[id] = time.Now().Add(clampTTL(jb.LeaseTTLMS))
	if p != nil {
		wm := *p
		wm.Job, wm.Worker = id, worker
		jb.Progress = &wm
		if q.notify != nil {
			q.notify(careapi.JobEvent{
				Op: opProgress, Job: id, State: jb.State,
				Campaign: jb.Spec.Campaign, Worker: worker, Attempt: token,
				Progress: &wm,
			})
		}
	}
	return q.view(jb), nil
}

// CompleteRemote commits a leased job's canonical result under its
// fencing token. A retried complete (the first response was lost) is
// idempotent: if the job is already done *by this exact lease*, it
// reports success without a second event. Any other mismatch is a
// fenced rejection.
func (q *Queue) CompleteRemote(id, worker string, token int, result []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if jb, ok := q.jobs[id]; ok &&
		jb.State == StateDone && jb.Worker == worker && jb.Attempts == token {
		return nil // duplicate of the winning complete
	}
	jb, err := q.checkLease(id, worker, token)
	if err != nil {
		return err
	}
	return q.commit(jb, Event{Op: opComplete, Job: id, Attempt: token, Worker: worker, Result: result})
}

// FailRemote ends a leased job under its fencing token. kind selects
// the transition: "requeue" (transient worker-side trouble — drain,
// resource exhaustion — the job becomes claimable again), "fail"
// (permanent), or "cancel" (acknowledging a server-requested cancel;
// rejected if no cancel is pending).
func (q *Queue) FailRemote(id, worker string, token int, kind, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, err := q.checkLease(id, worker, token)
	if err != nil {
		return err
	}
	switch kind {
	case "requeue":
		if err := q.commit(jb, Event{Op: opRequeue, Job: id, Attempt: token, Worker: worker, Error: reason}); err != nil {
			return err
		}
		q.ready = append(q.ready, id)
		q.cond.Broadcast()
		return nil
	case "fail":
		return q.commit(jb, Event{Op: opFail, Job: id, Attempt: token, Worker: worker, Error: reason})
	case "cancel":
		if !jb.CancelRequested {
			return fmt.Errorf("%w: cancel ack for job %s with no cancel pending", ErrBadTransition, id)
		}
		return q.commit(jb, Event{Op: opCancel, Job: id, Attempt: token, Worker: worker})
	default:
		return fmt.Errorf("server: unknown fail kind %q (want requeue, fail, or cancel)", kind)
	}
}

// RequestCancelLeased marks a leased job for cancellation: the holder
// learns on its next heartbeat and acknowledges with FailRemote
// kind=cancel; if the holder never comes back, the lease manager
// converts the expiry into the cancel. Returns false when the job is
// not currently leased.
func (q *Queue) RequestCancelLeased(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok || !jb.Leased() {
		return false
	}
	jb.CancelRequested = true
	return true
}

// ExpireLeases commits an expire event for every lease whose deadline
// has passed: the fencing moment where a partitioned or dead worker
// durably loses custody. Expired jobs return to pending (or straight
// to cancelled when a cancel was waiting on the holder). Journal
// failures leave the lease in place for the next sweep. It returns
// the IDs expired this call.
func (q *Queue) ExpireLeases(now time.Time) []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []string
	for _, id := range q.order {
		jb := q.jobs[id]
		deadline, armed := q.deadlines[id]
		if !jb.Leased() || !armed || now.Before(deadline) {
			continue
		}
		token, holder := jb.Attempts, jb.Worker
		if jb.CancelRequested {
			if err := q.commit(jb, Event{Op: opCancel, Job: id, Attempt: token, Worker: holder}); err != nil {
				continue
			}
		} else {
			reason := fmt.Sprintf("lease expired: worker %q (token %d) stopped heartbeating", holder, token)
			if err := q.commit(jb, Event{Op: opExpire, Job: id, Attempt: token, Worker: holder, Error: reason}); err != nil {
				continue
			}
			q.ready = append(q.ready, id)
			q.cond.Broadcast()
		}
		q.expirations++
		expired = append(expired, id)
	}
	return expired
}

// Expirations returns the total number of leases expired so far.
func (q *Queue) Expirations() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expirations
}

// ActiveLeases counts jobs currently running under a remote lease.
func (q *Queue) ActiveLeases() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, jb := range q.jobs {
		if jb.Leased() {
			n++
		}
	}
	return n
}

// view copies a job for the API, computing the remaining lease time.
// Callers hold q.mu.
func (q *Queue) view(jb *Job) Job {
	cp := *jb
	if deadline, ok := q.deadlines[jb.ID]; ok && jb.Leased() {
		if left := time.Until(deadline); left > 0 {
			cp.LeaseMSLeft = left.Milliseconds()
		}
	}
	return cp
}

// Complete commits the job's canonical result. This append is THE
// exactly-once commit point: a crash before it reruns the job (from
// its checkpoint, deterministically); a crash after it replays as
// done and the job never runs again.
func (q *Queue) Complete(id string, result []byte) error {
	return q.transition(id, StateRunning, Event{Op: opComplete, Job: id, Result: result})
}

// Fail commits a permanent failure (retry budgets exhausted, or the
// spec turned out to be unrunnable).
func (q *Queue) Fail(id string, reason string) error {
	return q.transition(id, StateRunning, Event{Op: opFail, Job: id, Error: reason})
}

// Requeue commits a running job back to pending (drain, worker panic,
// injected crash) so a later claim resumes it.
func (q *Queue) Requeue(id string, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if jb.State != StateRunning {
		return fmt.Errorf("%w: requeue of %s job %s", ErrBadTransition, jb.State, id)
	}
	if err := q.commit(jb, Event{Op: opRequeue, Job: id, Error: reason}); err != nil {
		return err
	}
	q.ready = append(q.ready, id)
	q.cond.Broadcast()
	return nil
}

// Cancel commits a pending job to cancelled. Cancelling a running job
// is coordinated by the pool (which interrupts the worker first and
// then commits); the queue only handles the queued case.
func (q *Queue) Cancel(id string) error {
	return q.transition(id, StatePending, Event{Op: opCancel, Job: id})
}

// CancelRunning commits the cancel event for a job the pool has
// already interrupted.
func (q *Queue) CancelRunning(id string) error {
	return q.transition(id, StateRunning, Event{Op: opCancel, Job: id})
}

// transition commits ev provided the job currently sits in want.
func (q *Queue) transition(id, want string, ev Event) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if jb.State != want {
		return fmt.Errorf("%w: %s of %s job %s", ErrBadTransition, ev.Op, jb.State, id)
	}
	return q.commit(jb, ev)
}

// Get returns a copy of the job.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jb, ok := q.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return q.view(jb), nil
}

// Jobs returns copies of every job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.view(q.jobs[id]))
	}
	return out
}

// List returns one filtered page of jobs in submission order. state
// and campaign filter when non-empty; limit bounds the page (0 =
// unlimited); cursor resumes after the job ID a previous page ended
// on. total counts every matching job regardless of paging, and next
// is the cursor for the following page ("" on the last). Cursoring is
// by job ID ordinal, so a page boundary stays valid even if the
// boundary job itself changes state between requests.
func (q *Queue) List(state, campaign string, limit int, cursor string) (jobs []Job, total int, next string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	after := uint64(0)
	if cursor != "" {
		after = parseJobID(cursor)
	}
	more := false
	for _, id := range q.order {
		jb := q.jobs[id]
		if state != "" && jb.State != state {
			continue
		}
		if campaign != "" && jb.Spec.Campaign != campaign {
			continue
		}
		total++
		if parseJobID(id) <= after {
			continue
		}
		if limit > 0 && len(jobs) == limit {
			more = true
			continue
		}
		jobs = append(jobs, q.view(jb))
	}
	if more && len(jobs) > 0 {
		next = jobs[len(jobs)-1].ID
	}
	return jobs, total, next
}

// Depth returns the number of claimable pending jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, id := range q.ready {
		if q.jobs[id].State == StatePending {
			n++
		}
	}
	return n
}

// Counts returns the number of jobs in each state.
func (q *Queue) Counts() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	counts := make(map[string]int)
	for _, jb := range q.jobs {
		counts[jb.State]++
	}
	return counts
}

// PendingByPriority returns the pending backlog bucketed by priority
// (the /metrics backpressure gauge).
func (q *Queue) PendingByPriority() map[int]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[int]int)
	for _, jb := range q.jobs {
		if jb.State == StatePending {
			out[jb.Spec.Priority]++
		}
	}
	return out
}

// Seq returns the journal's last committed sequence number.
func (q *Queue) Seq() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.jnl.Seq()
}

// Stop ends claiming: blocked Claim calls return false and workers
// wind down. The journal stays open so in-flight jobs can still
// commit their requeue/complete events while draining.
func (q *Queue) Stop() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Close stops claims and closes the journal. Call only after every
// in-flight job has committed its final transition.
func (q *Queue) Close() error {
	q.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jnl == nil {
		return nil
	}
	err := q.jnl.Close()
	q.jnl = nil
	return err
}
