package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startRemoteServer boots a server with no local worker pool, so
// submitted jobs sit pending until a (test-driven) remote claims them.
func startRemoteServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{
		Addr: "127.0.0.1:0", DataDir: dir, NoLocalWorkers: true,
		NoSync: true, LeaseCheckEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// httpJSONErr is httpJSON but also decodes the typed APIError body on
// non-2xx statuses.
func httpJSONErr(t *testing.T, method, url string, body any, out any) (int, APIError) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var apiErr APIError
	if resp.StatusCode >= 400 {
		json.NewDecoder(resp.Body).Decode(&apiErr)
	} else if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode, apiErr
}

func claimHTTP(t *testing.T, base, worker string, ttlMS int64, idem string) (ClaimResponse, int) {
	t.Helper()
	var cr ClaimResponse
	code, _ := httpJSONErr(t, "POST", base+"/api/v1/worker/claim",
		ClaimRequest{Worker: worker, TTLMS: ttlMS, Idem: idem}, &cr)
	return cr, code
}

// TestWorkerAPIFencingOverHTTP is the end-to-end fencing proof at the
// wire level: a worker that lost its lease gets HTTP 409 with the
// machine-readable code "stale_lease" when it tries to complete, and
// the journal records exactly one completion — the new holder's.
func TestWorkerAPIFencingOverHTTP(t *testing.T) {
	dir := t.TempDir()
	s := startRemoteServer(t, dir)
	defer s.Shutdown(t.Context())
	base := "http://" + s.Addr()

	if code := httpJSON(t, "POST", base+"/api/v1/jobs", tinySubmit(), nil); code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}

	// w1 claims with a very short lease and then goes silent.
	c1, code := claimHTTP(t, base, "w1", 30, "")
	if code != http.StatusOK {
		t.Fatalf("w1 claim: %d", code)
	}
	// The lease sweep expires it; w2 claims the same job at a higher
	// fencing token.
	var c2 ClaimResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		var cd int
		c2, cd = claimHTTP(t, base, "w2", 60_000, "")
		if cd == http.StatusOK && c2.Job.ID == c1.Job.ID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("w2 never claimed expired job (last status %d)", cd)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c2.Job.Attempts <= c1.Job.Attempts {
		t.Fatalf("reclaim token %d not above original %d", c2.Job.Attempts, c1.Job.Attempts)
	}

	// w2 completes.
	code, _ = httpJSONErr(t, "POST", base+"/api/v1/worker/complete", CompleteRequest{
		Worker: "w2", Job: c2.Job.ID, Token: c2.Job.Attempts,
		Result: json.RawMessage(`{"winner":"w2"}`),
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("w2 complete: %d", code)
	}

	// w1 wakes up and tries to write its result back: must be fenced
	// with the typed stale_lease error, not accepted, not a 500.
	code, apiErr := httpJSONErr(t, "POST", base+"/api/v1/worker/complete", CompleteRequest{
		Worker: "w1", Job: c1.Job.ID, Token: c1.Job.Attempts,
		Result: json.RawMessage(`{"winner":"w1"}`),
	}, nil)
	if code != http.StatusConflict || apiErr.Code != CodeStaleLease {
		t.Fatalf("stale complete = %d %+v, want 409 %s", code, apiErr, CodeStaleLease)
	}
	// Late heartbeats from the fenced holder are rejected the same way.
	code, apiErr = httpJSONErr(t, "POST", base+"/api/v1/worker/heartbeat", HeartbeatRequest{
		Worker: "w1", Job: c1.Job.ID, Token: c1.Job.Attempts,
	}, nil)
	if code != http.StatusConflict || apiErr.Code != CodeStaleLease {
		t.Fatalf("stale heartbeat = %d %+v, want 409 %s", code, apiErr, CodeStaleLease)
	}

	// The journal is the ground truth: exactly one complete event, and
	// it names w2 with w2's token.
	s.Shutdown(t.Context())
	_, events, err := OpenJournal(dir+"/journal", nil)
	if err != nil {
		t.Fatal(err)
	}
	completes := 0
	for _, ev := range events {
		if ev.Op == opComplete {
			completes++
			if ev.Worker != "w2" || ev.Attempt != c2.Job.Attempts {
				t.Fatalf("complete event attributed to %q token %d, want w2 token %d",
					ev.Worker, ev.Attempt, c2.Job.Attempts)
			}
			if !strings.Contains(string(ev.Result), "w2") {
				t.Fatalf("journaled result %s is not w2's", ev.Result)
			}
		}
	}
	if completes != 1 {
		t.Fatalf("journal has %d complete events, want exactly 1", completes)
	}
}

func TestWorkerAPIClaimEmptyQueueAndIdem(t *testing.T) {
	s := startRemoteServer(t, t.TempDir())
	defer s.Shutdown(t.Context())
	base := "http://" + s.Addr()

	if _, code := claimHTTP(t, base, "w1", 0, ""); code != http.StatusNoContent {
		t.Fatalf("claim on empty queue = %d, want 204", code)
	}
	if code := httpJSON(t, "POST", base+"/api/v1/jobs", tinySubmit(), nil); code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}
	c1, code := claimHTTP(t, base, "w1", 60_000, "idem-1")
	if code != http.StatusOK {
		t.Fatalf("claim: %d", code)
	}
	// A retried claim (duplicated request, lost reply) with the same
	// idempotency key returns the SAME lease instead of burning it.
	c2, code := claimHTTP(t, base, "w1", 60_000, "idem-1")
	if code != http.StatusOK || c2.Job.ID != c1.Job.ID || c2.Job.Attempts != c1.Job.Attempts {
		t.Fatalf("idem replay = %d %+v, want original lease %+v", code, c2.Job, c1.Job)
	}
}

func TestWorkerAPIArtifactRoundTripAndLeaseChecks(t *testing.T) {
	s := startRemoteServer(t, t.TempDir())
	defer s.Shutdown(t.Context())
	base := "http://" + s.Addr()

	if code := httpJSON(t, "POST", base+"/api/v1/jobs", tinySubmit(), nil); code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}
	c, code := claimHTTP(t, base, "w1", 60_000, "")
	if code != http.StatusOK {
		t.Fatalf("claim: %d", code)
	}
	if c.HasArtifact {
		t.Fatal("fresh job claims to have an artifact")
	}
	artURL := func(worker string, token int) string {
		return fmt.Sprintf("%s/api/v1/worker/jobs/%s/artifact?worker=%s&token=%d",
			base, c.Job.ID, worker, token)
	}

	// GET with no artifact → typed 404.
	code, apiErr := httpJSONErr(t, "GET", artURL("w1", c.Job.Attempts), nil, nil)
	if code != http.StatusNotFound || apiErr.Code != CodeArtifactNotFound {
		t.Fatalf("GET missing artifact = %d %+v", code, apiErr)
	}

	put := func(url, body string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Garbage upload is rejected by structural verification.
	if code := put(artURL("w1", c.Job.Attempts), "not a checkpoint"); code != http.StatusBadRequest {
		t.Fatalf("garbage upload = %d, want 400", code)
	}

	// A wrong fencing token cannot upload at all.
	if code := put(artURL("w1", c.Job.Attempts+1), "whatever"); code != http.StatusConflict {
		t.Fatalf("upload with stale token = %d, want 409", code)
	}
}

// TestHealthzAndMetricsExposeLeaseState is the observability
// satellite: the fleet/lease gauges must reflect a live remote claim.
func TestHealthzAndMetricsExposeLeaseState(t *testing.T) {
	s := startRemoteServer(t, t.TempDir())
	defer s.Shutdown(t.Context())
	base := "http://" + s.Addr()

	if code := httpJSON(t, "POST", base+"/api/v1/jobs", tinySubmit(), nil); code != http.StatusCreated {
		t.Fatalf("submit: %d", code)
	}
	if _, code := claimHTTP(t, base, "w-obs", 60_000, ""); code != http.StatusOK {
		t.Fatalf("claim: %d", code)
	}

	var h Health
	if code := httpJSON(t, "GET", base+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.ActiveLeases != 1 {
		t.Fatalf("healthz active_leases = %d, want 1", h.ActiveLeases)
	}
	found := false
	for _, w := range h.Fleet {
		if w.Name == "w-obs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("healthz fleet %+v missing w-obs", h.Fleet)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"care_server_active_leases 1",
		"care_server_lease_expirations_total",
		"care_server_artifact_store_files",
		"care_server_artifact_store_bytes",
		`care_server_worker_last_heartbeat_age_seconds{worker="w-obs"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}
