package server

import (
	"encoding/json"
	"errors"
	"fmt"

	"care/careapi"
	"care/internal/faultinject"
	"care/internal/harness"
	"care/internal/sim"
)

// The wire types are defined once, in package careapi, so server,
// worker client, dashboards, and tests all speak the same structs.
// The server aliases them under their historical names; everything
// journaled (JobSpec inside events) is a careapi type, which is what
// keeps the journal format and the API surface from drifting apart.
type (
	Job         = careapi.Job
	JobSpec     = careapi.JobSpec
	Constraints = careapi.Constraints
	WorkerCaps  = careapi.WorkerCaps
	Progress    = careapi.Progress
)

// Job states (re-exported from careapi).
const (
	StatePending   = careapi.StatePending
	StateRunning   = careapi.StateRunning
	StateDone      = careapi.StateDone
	StateFailed    = careapi.StateFailed
	StateCancelled = careapi.StateCancelled
)

// maxPriority bounds the priority knob; the range is part of the API
// contract (careapi.JobSpec.Priority).
const maxPriority = 100

// ValidateSpec rejects malformed specs at the API boundary.
func ValidateSpec(s *JobSpec) error {
	rs := RunSpecOf(s)
	if err := rs.Validate(); err != nil {
		return err
	}
	if s.Retries < 0 {
		return fmt.Errorf("server: negative retry budget %d", s.Retries)
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("server: negative timeout %d", s.TimeoutSec)
	}
	if s.Priority < -maxPriority || s.Priority > maxPriority {
		return fmt.Errorf("server: priority %d outside [%d, %d]", s.Priority, -maxPriority, maxPriority)
	}
	if c := s.Constraints; c != nil {
		if c.MinCores < 0 || c.MinMemMB < 0 {
			return fmt.Errorf("server: negative constraint (min_cores %d, min_mem_mb %d)", c.MinCores, c.MinMemMB)
		}
		for _, l := range c.Labels {
			if l == "" {
				return errors.New("server: empty constraint label")
			}
		}
	}
	if s.Faults != "" {
		if _, err := faultinject.ParseSpec(s.Faults); err != nil {
			return err
		}
	}
	return nil
}

// RunSpecOf converts the job spec to the harness's public run identity.
func RunSpecOf(s *JobSpec) harness.RunSpec {
	return harness.RunSpec{
		Kind:       s.Kind,
		Workload:   s.Workload,
		Scheme:     s.Policy,
		Cores:      s.Cores,
		Prefetch:   s.Prefetch,
		Scale:      s.Scale,
		Warmup:     s.Warmup,
		Measure:    s.Measure,
		GAPRecords: s.GAPRecords,
	}
}

// MarshalResult renders a simulation result as the canonical bytes
// stored in the journal and served by the API. Chaos tests compare
// these bytes against an unsupervised run's, so the encoding must be
// deterministic (encoding/json is, for a fixed struct).
func MarshalResult(r sim.Result) (json.RawMessage, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("server: encode result: %w", err)
	}
	return b, nil
}

// applyEvent folds one journal event into the job, enforcing the
// exactly-once invariant: a terminal job never transitions again.
// Lease deadlines and progress watermarks are runtime state owned by
// the queue, not touched here.
func applyEvent(jb *Job, ev Event) error {
	if jb.Terminal() {
		return fmt.Errorf("%w: job %s is %s; event %q violates exactly-once", ErrDuplicateTerminal, jb.ID, jb.State, ev.Op)
	}
	switch ev.Op {
	case opStart:
		jb.State = StateRunning
		jb.Attempts = ev.Attempt
		jb.Worker = ""
		jb.LeaseTTLMS = 0
	case opClaim:
		jb.State = StateRunning
		jb.Attempts = ev.Attempt
		jb.Worker = ev.Worker
		jb.LeaseTTLMS = ev.TTLMS
	case opRenew:
		// The renewed deadline is runtime state; the record exists so
		// the journal narrates lease custody (and so replay can prove a
		// partitioned worker stopped renewing before its expire event).
	case opExpire:
		jb.State = StatePending
		jb.Worker = ""
		jb.LeaseTTLMS = 0
		jb.Error = ev.Error
	case opRequeue:
		jb.State = StatePending
		jb.Worker = ""
		jb.LeaseTTLMS = 0
		jb.Error = ev.Error
	case opComplete:
		jb.State = StateDone
		jb.Result = ev.Result
		jb.Error = ""
		// Worker and Attempts survive: they identify the completing
		// lease, which is what makes a retried complete idempotent and
		// a stale one provably rejected.
	case opFail:
		jb.State = StateFailed
		jb.Error = ev.Error
	case opCancel:
		jb.State = StateCancelled
	case opSnapshot:
		// Compaction record: the job's entire replayed state in one
		// event (see compact.go). Only ever the first event for its ID.
		jb.State = ev.State
		jb.Attempts = ev.Attempt
		jb.Worker = ev.Worker
		jb.LeaseTTLMS = ev.TTLMS
		jb.Result = ev.Result
		jb.Error = ev.Error
	default:
		return fmt.Errorf("server: unknown journal op %q", ev.Op)
	}
	jb.Seq = ev.Seq
	return nil
}

// Journal ops (Event.Op values). opProgress is NOT a journal op: it
// appears only on the event stream (heartbeat watermarks are runtime
// state, never journaled).
const (
	opSubmit   = "submit"
	opSweep    = "sweep"
	opStart    = "start"
	opClaim    = "claim"
	opRenew    = "renew"
	opExpire   = "expire"
	opRequeue  = "requeue"
	opComplete = "complete"
	opFail     = "fail"
	opCancel   = "cancel"
	opSnapshot = "snapshot"
	opProgress = "progress"
)

// ErrUnknownJob is returned for lookups and transitions on job IDs
// the journal has never seen.
var ErrUnknownJob = errors.New("server: unknown job")

// ErrBadTransition is returned when an API call asks for a transition
// the job's current state does not allow (e.g. cancelling a done job).
var ErrBadTransition = errors.New("server: invalid job transition")

// ErrDuplicateTerminal marks a journal (or call sequence) that tries
// to transition a job that already reached a terminal state — the
// exactly-once invariant caught a violation.
var ErrDuplicateTerminal = errors.New("server: duplicate terminal transition")

// ErrStaleLease is the fencing rejection: a worker quoted a lease
// token (job attempt number) that is no longer the job's current
// lease — its lease expired, the job was re-claimed, or it already
// ended. The operation was NOT applied.
var ErrStaleLease = errors.New("server: stale lease")
