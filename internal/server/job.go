package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"care/internal/faultinject"
	"care/internal/harness"
	"care/internal/sim"
)

// Job states. A job is born pending, moves to running when a worker
// claims it, and ends in exactly one terminal state. requeue (crash,
// drain, or worker panic) moves running back to pending.
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobSpec describes one simulation job as submitted over the API. It
// maps one-to-one onto harness.RunSpec plus the per-job supervision
// knobs (retries, timeout, checkpoint period, fault spec).
type JobSpec struct {
	// Kind is "spec" or "gap".
	Kind string `json:"kind"`
	// Workload names the trace source (e.g. "429.mcf", "bfs-or").
	Workload string `json:"workload"`
	// Policy is the LLC replacement policy name (e.g. "care", "lru").
	Policy string `json:"policy"`
	// Cores is the simulated core count.
	Cores int `json:"cores"`
	// Prefetch enables the paper's prefetcher pairing.
	Prefetch bool `json:"prefetch,omitempty"`
	// Scale divides the hierarchy (0 = 1, the paper-size caches).
	Scale int `json:"scale,omitempty"`
	// Warmup and Measure are per-core instruction budgets.
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure"`
	// GAPRecords caps GAP kernel traces (0 = harness default).
	GAPRecords int `json:"gap_records,omitempty"`
	// CheckpointEvery is the measured-instruction checkpoint period
	// (0 = a quarter of Measure). The result of a job depends on this
	// schedule, so reproducing a job's bytes requires the same value.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
	// Retries is the in-worker retry budget per execution
	// (harness MaxAttempts = Retries+1).
	Retries int `json:"retries,omitempty"`
	// TimeoutSec bounds one execution's wall clock (0 = unlimited).
	TimeoutSec int `json:"timeout_sec,omitempty"`
	// Faults is a faultinject spec applied inside the job's
	// simulation (chaos testing; "" = none).
	Faults string `json:"faults,omitempty"`
}

// Validate rejects malformed specs at the API boundary.
func (s *JobSpec) Validate() error {
	rs := s.RunSpec()
	if err := rs.Validate(); err != nil {
		return err
	}
	if s.Retries < 0 {
		return fmt.Errorf("server: negative retry budget %d", s.Retries)
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("server: negative timeout %d", s.TimeoutSec)
	}
	if s.Faults != "" {
		if _, err := faultinject.ParseSpec(s.Faults); err != nil {
			return err
		}
	}
	return nil
}

// RunSpec converts the job spec to the harness's public run identity.
func (s *JobSpec) RunSpec() harness.RunSpec {
	return harness.RunSpec{
		Kind:       s.Kind,
		Workload:   s.Workload,
		Scheme:     s.Policy,
		Cores:      s.Cores,
		Prefetch:   s.Prefetch,
		Scale:      s.Scale,
		Warmup:     s.Warmup,
		Measure:    s.Measure,
		GAPRecords: s.GAPRecords,
	}
}

// Timeout returns the per-execution deadline, or 0 for none.
func (s *JobSpec) Timeout() time.Duration {
	return time.Duration(s.TimeoutSec) * time.Second
}

// MarshalResult renders a simulation result as the canonical bytes
// stored in the journal and served by the API. Chaos tests compare
// these bytes against an unsupervised run's, so the encoding must be
// deterministic (encoding/json is, for a fixed struct).
func MarshalResult(r sim.Result) (json.RawMessage, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("server: encode result: %w", err)
	}
	return b, nil
}

// Job is the in-memory view of one submitted job: pure replayed
// journal state plus scheduling bookkeeping.
type Job struct {
	// ID is the server-assigned job identifier ("j000001", ...).
	ID string `json:"id"`
	// Spec is the submitted job description.
	Spec JobSpec `json:"spec"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Attempts counts server-level executions: how many times a worker
	// (local or remote) claimed this job. For remote claims the attempt
	// number doubles as the lease's **fencing token**: a worker may only
	// heartbeat, upload artifacts for, or complete the job while quoting
	// the attempt number of its own claim, so a worker whose lease
	// expired (and whose job was re-claimed at a higher attempt) is
	// rejected no matter how late its requests arrive.
	Attempts int `json:"attempts"`
	// Worker names the remote worker holding (or, on a done job, the
	// one that completed) the lease; "" for local executions.
	Worker string `json:"worker,omitempty"`
	// LeaseTTLMS is the lease duration granted at claim/renew time.
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
	// LeaseMSLeft is how much of the lease remains, computed when the
	// job is copied out for the API (0 when no lease is active).
	LeaseMSLeft int64 `json:"lease_ms_left,omitempty"`
	// CancelRequested is set when a cancel arrived for a leased job;
	// the holder learns on its next heartbeat and unwinds.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Result is the canonical result JSON (terminal done state only).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure reason (terminal failed state, and the last
	// requeue reason while pending again).
	Error string `json:"error,omitempty"`
	// Seq is the journal sequence of the job's latest transition.
	Seq uint64 `json:"seq"`

	// leaseDeadline is the wall-clock lease expiry, maintained at
	// runtime (never journaled: after a restart the replayed lease is
	// re-armed at now+TTL, giving a surviving worker one full TTL to
	// re-appear before the lease manager expires it).
	leaseDeadline time.Time
}

// Leased reports whether the job is running under a remote lease.
func (jb *Job) Leased() bool {
	return jb.State == StateRunning && jb.Worker != ""
}

// Terminal reports whether the job has reached a final state.
func (jb *Job) Terminal() bool {
	switch jb.State {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// apply folds one journal event into the job, enforcing the exactly-
// once invariant: a terminal job never transitions again.
func (jb *Job) apply(ev Event) error {
	if jb.Terminal() {
		return fmt.Errorf("%w: job %s is %s; event %q violates exactly-once", ErrDuplicateTerminal, jb.ID, jb.State, ev.Op)
	}
	switch ev.Op {
	case opStart:
		jb.State = StateRunning
		jb.Attempts = ev.Attempt
		jb.Worker = ""
		jb.LeaseTTLMS = 0
	case opClaim:
		jb.State = StateRunning
		jb.Attempts = ev.Attempt
		jb.Worker = ev.Worker
		jb.LeaseTTLMS = ev.TTLMS
	case opRenew:
		// The renewed deadline is runtime state; the record exists so
		// the journal narrates lease custody (and so replay can prove a
		// partitioned worker stopped renewing before its expire event).
	case opExpire:
		jb.State = StatePending
		jb.Worker = ""
		jb.LeaseTTLMS = 0
		jb.Error = ev.Error
	case opRequeue:
		jb.State = StatePending
		jb.Worker = ""
		jb.LeaseTTLMS = 0
		jb.Error = ev.Error
	case opComplete:
		jb.State = StateDone
		jb.Result = ev.Result
		jb.Error = ""
		// Worker and Attempts survive: they identify the completing
		// lease, which is what makes a retried complete idempotent and
		// a stale one provably rejected.
	case opFail:
		jb.State = StateFailed
		jb.Error = ev.Error
	case opCancel:
		jb.State = StateCancelled
	case opSnapshot:
		// Compaction record: the job's entire replayed state in one
		// event (see compact.go). Only ever the first event for its ID.
		jb.State = ev.State
		jb.Attempts = ev.Attempt
		jb.Worker = ev.Worker
		jb.LeaseTTLMS = ev.TTLMS
		jb.Result = ev.Result
		jb.Error = ev.Error
	default:
		return fmt.Errorf("server: unknown journal op %q", ev.Op)
	}
	jb.Seq = ev.Seq
	jb.leaseDeadline = time.Time{}
	return nil
}

// Journal ops (Event.Op values).
const (
	opSubmit   = "submit"
	opSweep    = "sweep"
	opStart    = "start"
	opClaim    = "claim"
	opRenew    = "renew"
	opExpire   = "expire"
	opRequeue  = "requeue"
	opComplete = "complete"
	opFail     = "fail"
	opCancel   = "cancel"
	opSnapshot = "snapshot"
)

// ErrUnknownJob is returned for lookups and transitions on job IDs
// the journal has never seen.
var ErrUnknownJob = errors.New("server: unknown job")

// ErrBadTransition is returned when an API call asks for a transition
// the job's current state does not allow (e.g. cancelling a done job).
var ErrBadTransition = errors.New("server: invalid job transition")

// ErrDuplicateTerminal marks a journal (or call sequence) that tries
// to transition a job that already reached a terminal state — the
// exactly-once invariant caught a violation.
var ErrDuplicateTerminal = errors.New("server: duplicate terminal transition")

// ErrStaleLease is the fencing rejection: a worker quoted a lease
// token (job attempt number) that is no longer the job's current
// lease — its lease expired, the job was re-claimed, or it already
// ended. The operation was NOT applied.
var ErrStaleLease = errors.New("server: stale lease")
