package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestJournal(t *testing.T, path string) (*Journal, []Event) {
	t.Helper()
	j, events, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	j.nosync = true // keep the unit tests off the fsync path
	return j, events
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, events := openTestJournal(t, path)
	if len(events) != 0 {
		t.Fatalf("fresh journal replayed %d events", len(events))
	}
	spec := &JobSpec{Kind: "spec", Workload: "429.mcf", Policy: "care", Cores: 1, Measure: 1000}
	appended := []Event{
		{Op: opSubmit, Job: "j000001", Spec: spec},
		{Op: opStart, Job: "j000001", Attempt: 1},
		{Op: opComplete, Job: "j000001", Result: []byte(`{"ipc":1.5}`)},
	}
	for i := range appended {
		if err := j.Append(&appended[i]); err != nil {
			t.Fatal(err)
		}
		if appended[i].Seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, appended[i].Seq)
		}
	}
	j.Close()

	j2, replayed := openTestJournal(t, path)
	if len(replayed) != 3 {
		t.Fatalf("replayed %d events, want 3", len(replayed))
	}
	for i, ev := range replayed {
		if ev.Seq != uint64(i+1) || ev.Op != appended[i].Op || ev.Job != "j000001" {
			t.Fatalf("replayed event %d = %+v", i, ev)
		}
	}
	if replayed[0].Spec == nil || replayed[0].Spec.Workload != "429.mcf" {
		t.Fatalf("submit spec lost in replay: %+v", replayed[0].Spec)
	}
	if string(replayed[2].Result) != `{"ipc":1.5}` {
		t.Fatalf("result bytes changed in replay: %s", replayed[2].Result)
	}
	if j2.Seq() != 3 {
		t.Fatalf("replayed journal resumes at seq %d, want 3", j2.Seq())
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _ := openTestJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append(&Event{Op: opSubmit, Job: "j000001", Spec: &JobSpec{}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final record mid-body, as a crash mid-write would.
	torn := data[:len(data)-len(data)/7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, events := openTestJournal(t, path)
	if len(events) != 2 {
		t.Fatalf("replayed %d events after tear, want 2", len(events))
	}
	if j2.Seq() != 2 {
		t.Fatalf("seq after tear = %d, want 2", j2.Seq())
	}
	// The torn bytes must be gone so the next append is parseable.
	if err := j2.Append(&Event{Op: opStart, Job: "j000001", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, events = openTestJournal(t, path)
	if len(events) != 3 || events[2].Op != opStart {
		t.Fatalf("append after tear-recovery replayed as %+v", events)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _ := openTestJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append(&Event{Op: opSubmit, Job: "j000001", Spec: &JobSpec{}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record: valid records follow, so
	// this is real corruption, not a torn tail.
	data[len(data)/6] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenJournal(path, nil)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("mid-file corruption returned %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalRejectsSequenceBreak(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _ := openTestJournal(t, path)
	for i := 0; i < 4; i++ {
		if err := j.Append(&Event{Op: opSubmit, Job: "j000001", Spec: &JobSpec{}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the second record: seq jumps 1 → 3 with valid records after
	// the break, which must read as corruption (a lost committed
	// transition), never as a tear. (A break on the *final* line is
	// indistinguishable from a tear and is truncated instead.)
	lines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(path, []byte(lines[0]+lines[2]+lines[3]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, nil); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("sequence break returned %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalRejectsForeignFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, []byte("NOTAJRNL 1 00000000 {}\nNOTAJRNL 2 00000000 {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path, nil)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("foreign journal returned %v, want ErrJournalCorrupt", err)
	}
	if !strings.Contains(err.Error(), "bad framing") {
		t.Fatalf("error should name the framing problem: %v", err)
	}
}
