// Server-sent events: GET /api/v1/jobs/events streams every job
// state transition (and heartbeat progress watermarks) so clients
// never poll. Event IDs are journal positions ("seq" for single-job
// records, "seq.k" inside an atomic sweep record), which makes resume
// exact: a client that reconnects with Last-Event-ID replays the
// on-disk journal from that position and then switches to the live
// feed, observing every transition exactly once even across a server
// SIGKILL. Progress events carry no id — they are runtime state, not
// journaled, and simply refresh after a resume.
//
// The subscription protocol is lossless by construction: subscribe to
// the hub FIRST, then read the journal, then drain the live channel
// deduplicating by event id. A transition committed during the
// journal read appears on both paths and is emitted once. A
// subscriber that cannot keep up is disconnected (its channel would
// otherwise block the queue) and recovers by reconnecting with its
// last seen id.
//
// Caveat: startup journal compaction rewrites sequence numbers, so a
// Last-Event-ID from before a compaction does not resume correctly
// across it. Campaigns that need seamless resume across restarts run
// with compaction disabled (as the chaos suite does); interactive
// clients just re-list once on a resume gap.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"care/careapi"
)

// subBuffer is each subscriber's channel depth. A slow consumer gets
// this much slack before it is dropped; the queue never blocks on it.
const subBuffer = 256

// eventSub is one live stream subscription.
type eventSub struct {
	ch       chan careapi.JobEvent
	job      string // filter: only this job ("" = all)
	campaign string // filter: only this campaign ("" = all)
}

// wants applies the subscription's filters.
func (s *eventSub) wants(ev careapi.JobEvent) bool {
	if s.job != "" && ev.Job != s.job {
		return false
	}
	if s.campaign != "" && ev.Campaign != s.campaign {
		return false
	}
	return true
}

// eventHub fans queue transitions out to SSE subscribers. publish is
// called under the queue mutex, so it must never block: a full
// subscriber is closed and dropped instead (the client reconnects and
// resumes from its Last-Event-ID).
type eventHub struct {
	mu     sync.Mutex
	subs   map[*eventSub]struct{}
	closed bool
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[*eventSub]struct{})}
}

// publish delivers ev to every matching subscriber, non-blocking.
func (h *eventHub) publish(ev careapi.JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		if !sub.wants(ev) {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			// Lagging consumer: cut it loose rather than stall the queue.
			delete(h.subs, sub)
			close(sub.ch)
		}
	}
}

// subscribe registers a new filtered subscription, or returns nil if
// the hub has shut down.
func (h *eventHub) subscribe(job, campaign string) *eventSub {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &eventSub{ch: make(chan careapi.JobEvent, subBuffer), job: job, campaign: campaign}
	h.subs[sub] = struct{}{}
	return sub
}

// unsubscribe removes sub; safe to call after the hub already dropped
// or closed it.
func (h *eventHub) unsubscribe(sub *eventSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// Count returns the live subscriber count (/healthz, /metrics).
func (h *eventHub) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Close drops every subscriber and refuses new ones. Must run before
// http.Server.Shutdown: SSE handlers only return when their channel
// closes (or their client leaves), and Shutdown waits for handlers.
func (h *eventHub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// stateAfter maps a journal op to the state the job entered. The
// mapping is static (an expire that lands as a cancel is journaled as
// opCancel), which is what lets the resume path derive states from
// raw journal records without replaying the whole queue.
func stateAfter(ev *Event) string {
	switch ev.Op {
	case opSubmit, opSweep, opExpire, opRequeue:
		return StatePending
	case opStart, opClaim:
		return StateRunning
	case opComplete:
		return StateDone
	case opFail:
		return StateFailed
	case opCancel:
		return StateCancelled
	case opSnapshot:
		return ev.State
	}
	return ""
}

// journalJobEvents converts replayed journal records to stream
// events, assigning sweep sub-ids and resolving each job's campaign
// (later records carry only the job ID; the campaign comes from the
// submit/sweep/snapshot record that introduced the spec).
func journalJobEvents(events []Event) []careapi.JobEvent {
	campaigns := make(map[string]string)
	out := make([]careapi.JobEvent, 0, len(events))
	for i := range events {
		ev := &events[i]
		switch ev.Op {
		case opRenew:
			continue // custody narration, not a transition
		case opSweep:
			for k := range ev.Specs {
				campaigns[ev.IDs[k]] = ev.Specs[k].Campaign
				out = append(out, careapi.JobEvent{
					Seq: ev.Seq, Sub: k + 1, Op: opSweep, Job: ev.IDs[k],
					State: StatePending, Campaign: ev.Specs[k].Campaign,
				})
			}
			continue
		case opSubmit, opSnapshot:
			if ev.Spec != nil {
				campaigns[ev.Job] = ev.Spec.Campaign
			}
		}
		out = append(out, careapi.JobEvent{
			Seq: ev.Seq, Op: ev.Op, Job: ev.Job, State: stateAfter(ev),
			Campaign: campaigns[ev.Job], Worker: ev.Worker, Attempt: ev.Attempt,
			Error: ev.Error,
		})
	}
	return out
}

// sseWriter frames JobEvents as text/event-stream messages.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// event writes one SSE message. Transitions go out as "event: job"
// with their journal-position id; progress watermarks as "event:
// progress" with no id, so they never advance the browser's
// Last-Event-ID past transitions it hasn't seen.
func (s *sseWriter) event(ev careapi.JobEvent) error {
	name, id := "job", ev.EventID()
	if ev.Op == opProgress {
		name, id = "progress", ""
	}
	// json.Marshal emits no raw newlines, so one data: line suffices.
	body, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if id != "" {
		_, err = fmt.Fprintf(s.w, "event: %s\nid: %s\ndata: %s\n\n", name, id, body)
	} else {
		_, err = fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, body)
	}
	if err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}

// comment writes an SSE comment line (keepalive).
func (s *sseWriter) comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}

// sseKeepaliveEvery spaces keepalive comments so intermediaries do
// not reap an idle stream.
const sseKeepaliveEvery = 15 * time.Second

// handleEvents serves GET /api/v1/jobs/events. Query: ?job= and
// ?campaign= filter; ?after= is a manual resume cursor ("0" replays
// the whole journal) with the Last-Event-ID header taking precedence
// on reconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, careapi.CodeStreamUnsupported,
			fmt.Errorf("response writer cannot stream"))
		return
	}
	job := r.URL.Query().Get("job")
	campaign := r.URL.Query().Get("campaign")
	var cur careapi.EventCursor
	resume := false
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		c, err := careapi.ParseEventID(lei)
		if err != nil {
			writeError(w, http.StatusBadRequest, careapi.CodeBadRequest, err)
			return
		}
		cur, resume = c, true
	} else if after := r.URL.Query().Get("after"); after != "" {
		c, err := careapi.ParseEventID(after)
		if err != nil {
			writeError(w, http.StatusBadRequest, careapi.CodeBadRequest, err)
			return
		}
		cur, resume = c, true
	}

	// Subscribe BEFORE reading the journal: anything committed during
	// the read shows up on both paths and is deduplicated by id below.
	sub := s.hub.subscribe(job, campaign)
	if sub == nil {
		writeError(w, http.StatusServiceUnavailable, careapi.CodeDraining,
			fmt.Errorf("server is draining"))
		return
	}
	defer s.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	out := &sseWriter{w: w, fl: fl}
	out.comment("stream open")

	if resume {
		data, err := os.ReadFile(s.journalPath)
		if err != nil {
			return
		}
		// A torn tail here means an append is mid-flight; its event will
		// arrive on the live channel we already hold.
		events, _, rerr := replay(data)
		if rerr != nil {
			return
		}
		for _, ev := range journalJobEvents(events) {
			if !ev.After(cur) {
				continue
			}
			if job != "" && ev.Job != job {
				continue
			}
			if campaign != "" && ev.Campaign != campaign {
				continue
			}
			if out.event(ev) != nil {
				return
			}
			cur = careapi.EventCursor{Seq: ev.Seq, Sub: ev.Sub}
		}
	}

	keepalive := time.NewTicker(sseKeepaliveEvery)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if out.comment("keepalive") != nil {
				return
			}
		case ev, open := <-sub.ch:
			if !open {
				return // hub closed us (shutdown or lag); client reconnects
			}
			if ev.Op != opProgress {
				if resume && !ev.After(cur) {
					continue // already sent from the journal read
				}
				cur, resume = careapi.EventCursor{Seq: ev.Seq, Sub: ev.Sub}, true
			}
			if out.event(ev) != nil {
				return
			}
		}
	}
}
