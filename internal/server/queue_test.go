package server

import (
	"errors"
	"path/filepath"
	"testing"
)

func testSpec() JobSpec {
	return JobSpec{Kind: "spec", Workload: "429.mcf", Policy: "care", Cores: 1, Warmup: 100, Measure: 1000}
}

func openTestQueue(t *testing.T, path string) *Queue {
	t.Helper()
	q, err := OpenQueue(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	q.jnl.nosync = true
	return q
}

func TestQueueSubmitClaimComplete(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	jb, err := q.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if jb.ID != "j000001" || jb.State != StatePending {
		t.Fatalf("submitted job = %+v", jb)
	}
	claimed, ok := q.Claim()
	if !ok || claimed.ID != jb.ID || claimed.State != StateRunning || claimed.Attempts != 1 {
		t.Fatalf("claimed = %+v ok=%v", claimed, ok)
	}
	if err := q.Complete(jb.ID, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	got, err := q.Get(jb.ID)
	if err != nil || got.State != StateDone || string(got.Result) != `{"ok":true}` {
		t.Fatalf("completed job = %+v err=%v", got, err)
	}
	// Exactly-once: no further transitions are accepted.
	if err := q.Complete(jb.ID, nil); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double complete returned %v, want ErrBadTransition", err)
	}
}

func TestQueueRejectsInvalidSpec(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	bad := testSpec()
	bad.Policy = "no-such-policy"
	if _, err := q.Submit(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if n := len(q.Jobs()); n != 0 {
		t.Fatalf("rejected submit left %d jobs", n)
	}
}

func TestQueueReplayRestoresState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	q := openTestQueue(t, path)
	a, _ := q.Submit(testSpec())
	b, _ := q.Submit(testSpec())
	c, _ := q.Submit(testSpec())
	ca, _ := q.Claim() // a starts
	if ca.ID != a.ID {
		t.Fatalf("claimed %s, want %s", ca.ID, a.ID)
	}
	if err := q.Complete(a.ID, []byte(`{"r":1}`)); err != nil {
		t.Fatal(err)
	}
	q.Claim() // b starts and is left running (simulated crash)
	if err := q.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	q.Close()

	q2 := openTestQueue(t, path)
	ga, _ := q2.Get(a.ID)
	gb, _ := q2.Get(b.ID)
	gc, _ := q2.Get(c.ID)
	if ga.State != StateDone || string(ga.Result) != `{"r":1}` {
		t.Fatalf("job a after replay = %+v", ga)
	}
	if gb.State != StatePending {
		t.Fatalf("crashed-running job b replayed as %s, want pending (implicit requeue)", gb.State)
	}
	if gc.State != StateCancelled {
		t.Fatalf("job c after replay = %+v", gc)
	}
	// The interrupted job is claimable again, with the attempt counter
	// advancing past the crashed execution.
	rb, ok := q2.Claim()
	if !ok || rb.ID != b.ID || rb.Attempts != 2 {
		t.Fatalf("reclaim after replay = %+v ok=%v", rb, ok)
	}
	// ID assignment continues past replayed jobs.
	d, err := q2.Submit(testSpec())
	if err != nil || d.ID != "j000004" {
		t.Fatalf("post-replay submit = %+v err=%v", d, err)
	}
}

func TestQueueRequeueMakesJobClaimable(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	jb, _ := q.Submit(testSpec())
	q.Claim()
	if err := q.Requeue(jb.ID, "drained"); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Get(jb.ID)
	if got.State != StatePending || got.Error != "drained" {
		t.Fatalf("requeued job = %+v", got)
	}
	re, ok := q.Claim()
	if !ok || re.ID != jb.ID || re.Attempts != 2 {
		t.Fatalf("re-claim = %+v ok=%v", re, ok)
	}
}

func TestQueueClaimUnblocksOnClose(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	done := make(chan bool)
	go func() {
		_, ok := q.Claim()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Claim returned a job from a closed empty queue")
	}
}

func TestQueueCancelSkipsClaim(t *testing.T) {
	q := openTestQueue(t, filepath.Join(t.TempDir(), "journal"))
	a, _ := q.Submit(testSpec())
	b, _ := q.Submit(testSpec())
	if err := q.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	got, ok := q.Claim()
	if !ok || got.ID != b.ID {
		t.Fatalf("claim after cancel = %+v ok=%v, want %s", got, ok, b.ID)
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", q.Depth())
	}
}
