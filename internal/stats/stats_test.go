package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Fatal("geomean(2,8) should be 4")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean is 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("zero input rejected")
	}
	if GeoMean([]float64{1, -2}) != 0 {
		t.Fatal("negative input rejected")
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return g >= mn-1e-9 && g <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedian(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("median mutated input")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ipc := []float64{2, 2}
	base := []float64{1, 2}
	if !almost(WeightedSpeedup(ipc, base), 3) {
		t.Fatal("weighted speedup 2/1 + 2/2 = 3")
	}
	if !almost(NormalizedWeightedSpeedup(ipc, base), 1.5) {
		t.Fatal("normalized = 1.5")
	}
	if WeightedSpeedup([]float64{1}, []float64{1, 2}) != 0 {
		t.Fatal("length mismatch rejected")
	}
	if WeightedSpeedup([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero baseline rejected")
	}
	if NormalizedWeightedSpeedup(nil, nil) != 0 {
		t.Fatal("empty rejected")
	}
}

func TestMPKI(t *testing.T) {
	if !almost(MPKI(5, 1000), 5) {
		t.Fatal("5 misses per 1000 instructions = 5 MPKI")
	}
	if MPKI(5, 0) != 0 {
		t.Fatal("zero instructions")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8, 50)
	for _, v := range []float64{0, 49, 50, 125, 349, 350, 1000, -3} {
		h.Add(v)
	}
	if h.Total != 8 {
		t.Fatalf("total = %d", h.Total)
	}
	// Bin 0: 0, 49, -3 (clamped). Bin 1: 50. Bin 2: 125. Bin 6: 349.
	// Bin 7 (open): 350, 1000.
	want := []uint64{3, 1, 1, 0, 0, 0, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if !almost(sum, 1) {
		t.Fatalf("fractions must sum to 1, got %v", sum)
	}
	empty := NewHistogram(4, 10)
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram fractions must be zero")
		}
	}
}

func TestHistogramClampsBins(t *testing.T) {
	h := NewHistogram(0, 10) // clamped to 1 bin
	h.Add(5)
	if len(h.Counts) != 1 || h.Counts[0] != 1 {
		t.Fatal("degenerate histogram should still work")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5000") || !strings.Contains(out, "42") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("table should have 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("plain", 1.0)
	tb.AddRow("with,comma", `quote"inside`)
	out := tb.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) || !strings.Contains(lines[2], `"quote""inside"`) {
		t.Fatalf("CSV quoting wrong: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("name", "value", "note")
	tb.AddRow("alpha", 1.5, "pipe|inside")
	tb.AddRow("short") // rows shorter than the header are padded
	out := tb.Markdown()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("markdown lines = %d, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "| name | value | note |" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "|---|---|---|" {
		t.Fatalf("separator = %q", lines[1])
	}
	if !strings.Contains(lines[2], `pipe\|inside`) {
		t.Fatalf("pipe not escaped: %q", lines[2])
	}
	if strings.Count(lines[3], "|") != 4 {
		t.Fatalf("short row not padded to header width: %q", lines[3])
	}
}

func TestTableMarkdownFloats(t *testing.T) {
	tb := NewTable("v32", "v64")
	tb.AddRow(float32(0.25), 0.125)
	out := tb.Markdown()
	if !strings.Contains(out, "0.2500") || !strings.Contains(out, "0.1250") {
		t.Fatalf("float formatting lost in markdown:\n%s", out)
	}
}

func TestNormalizedWeightedSpeedup(t *testing.T) {
	got := NormalizedWeightedSpeedup([]float64{2, 2}, []float64{1, 1})
	if got != 2 {
		t.Fatalf("NWS = %v, want 2", got)
	}
	if NormalizedWeightedSpeedup(nil, nil) != 0 {
		t.Fatal("empty NWS should be 0")
	}
}

func TestHistogramNegativeAndFractions(t *testing.T) {
	h := NewHistogram(4, 10)
	h.Add(-5) // clamps into the first bin
	h.Add(5)
	h.Add(1000) // clamps into the open-ended last bin
	if h.Counts[0] != 2 || h.Counts[3] != 1 {
		t.Fatalf("clamping wrong: %+v", h.Counts)
	}
	fr := h.Fractions()
	if fr[0] != 2.0/3 || fr[3] != 1.0/3 {
		t.Fatalf("fractions wrong: %v", fr)
	}
	var empty Histogram
	empty.Counts = make([]uint64, 2)
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Fatal("empty histogram fractions should be 0")
		}
	}
}
