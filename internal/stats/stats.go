// Package stats provides the metric arithmetic the paper's evaluation
// reports: geometric-mean speedups, weighted speedup for multi-core
// mixes, MPKI, histograms for PMC distributions, and small text-table
// formatting used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs; zero or negative inputs
// are rejected with 0 (they would poison the product).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the middle value (average of middles for even n).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// WeightedSpeedup is the shared-cache metric the paper reports for
// multi-core runs: sum over cores of IPC_scheme / IPC_baseline.
// Slices must be equal length and the baseline IPCs positive.
func WeightedSpeedup(ipc, baseline []float64) float64 {
	if len(ipc) != len(baseline) || len(ipc) == 0 {
		return 0
	}
	sum := 0.0
	for i := range ipc {
		if baseline[i] <= 0 {
			return 0
		}
		sum += ipc[i] / baseline[i]
	}
	return sum
}

// NormalizedWeightedSpeedup divides WeightedSpeedup by the core count
// so 1.0 means "same as baseline".
func NormalizedWeightedSpeedup(ipc, baseline []float64) float64 {
	if len(ipc) == 0 {
		return 0
	}
	return WeightedSpeedup(ipc, baseline) / float64(len(ipc))
}

// MPKI returns misses per kilo-instruction.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) / float64(instructions) * 1000
}

// Histogram buckets values into fixed-width bins with a catch-all
// overflow bin, like the paper's PMC distribution (Figure 5: eight
// 50-cycle bins, the last open-ended).
type Histogram struct {
	// BinWidth is the width of each regular bin.
	BinWidth float64
	// Counts has one entry per bin; the last bin is open-ended.
	Counts []uint64
	// Total is the number of observations.
	Total uint64
}

// NewHistogram creates a histogram with bins regular bins plus the
// open-ended last bin included in that count.
func NewHistogram(bins int, width float64) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{BinWidth: width, Counts: make([]uint64, bins)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	h.Total++
	idx := int(v / h.BinWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Fractions returns each bin's share of the total.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// Table accumulates rows and renders a fixed-width text table; the
// harness uses it to print each reproduced paper table/figure.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are Sprint'ed.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// CSV renders the table as comma-separated values (quoting cells
// that contain commas or quotes), for plot pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table
// (pipes in cells are escaped), for reports that land in issues or
// docs. cmd/care-report -md uses it.
func (t *Table) Markdown() string {
	esc := func(c string) string {
		c = strings.ReplaceAll(c, "|", `\|`)
		return strings.ReplaceAll(c, "\n", " ")
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(esc(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	b.WriteByte('|')
	for range t.header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		// Pad short rows so the markdown stays rectangular.
		row := r
		for len(row) < len(t.header) {
			row = append(row, "")
		}
		writeRow(row[:len(t.header)])
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
