package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"care/internal/mem"
)

func sampleRecords() []Record {
	return []Record{
		{PC: 0x400100, Addr: 0x7fff0000, IsWrite: false, NonMem: 3},
		{PC: 0x400108, Addr: 0x7fff0040, IsWrite: true, NonMem: 0},
		{PC: 0x400110, Addr: 0x12345678, IsWrite: false, NonMem: 65535},
	}
}

func TestRecordKind(t *testing.T) {
	if (Record{IsWrite: false}).Kind() != mem.Load {
		t.Fatal("read record should be a load")
	}
	if (Record{IsWrite: true}).Kind() != mem.Store {
		t.Fatal("write record should be a store")
	}
}

func TestRecordInstructions(t *testing.T) {
	r := Record{NonMem: 7}
	if got := r.Instructions(); got != 8 {
		t.Fatalf("Instructions() = %d, want 8", got)
	}
}

func TestSliceReader(t *testing.T) {
	s := NewSlice(sampleRecords())
	var got []Record
	for {
		rec, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, rec)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Fatalf("slice read mismatch: got %v", got)
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("exhausted slice should keep returning EOF, got %v", err)
	}
	s.Reset()
	rec, err := s.Next()
	if err != nil || rec != sampleRecords()[0] {
		t.Fatalf("after Reset, Next = (%v, %v)", rec, err)
	}
}

func TestSliceInstructions(t *testing.T) {
	s := NewSlice(sampleRecords())
	want := uint64(3+1) + uint64(0+1) + uint64(65535+1)
	if got := s.Instructions(); got != want {
		t.Fatalf("Instructions() = %d, want %d", got, want)
	}
}

func TestLoopingWraps(t *testing.T) {
	s := NewSlice(sampleRecords())
	l := NewLooping(s)
	n := len(sampleRecords())
	for i := 0; i < 3*n; i++ {
		rec, err := l.Next()
		if err != nil {
			t.Fatalf("looping Next: %v", err)
		}
		if want := sampleRecords()[i%n]; rec != want {
			t.Fatalf("record %d = %v, want %v", i, rec, want)
		}
	}
	if l.Wraps != 2 {
		t.Fatalf("Wraps = %d, want 2", l.Wraps)
	}
	l.Reset()
	if l.Wraps != 0 {
		t.Fatalf("Wraps after Reset = %d, want 0", l.Wraps)
	}
}

type bareReader struct{}

func (bareReader) Next() (Record, error) { return Record{}, io.EOF }

func TestLoopingRequiresResetter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLooping should panic on a non-Resetter")
		}
	}()
	NewLooping(bareReader{})
}

func TestGeneratorReset(t *testing.T) {
	i := 0
	g := NewGenerator(
		func() (Record, error) {
			i++
			return Record{NonMem: uint16(i)}, nil
		},
		func() { i = 0 },
	)
	r1, _ := g.Next()
	g.Reset()
	r2, _ := g.Next()
	if r1 != r2 {
		t.Fatalf("generator not deterministic across Reset: %v vs %v", r1, r2)
	}
}

func TestGeneratorNonResettablePanics(t *testing.T) {
	g := NewGenerator(func() (Record, error) { return Record{}, nil }, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on non-resettable generator should panic")
		}
	}()
	g.Reset()
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecords()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Fatalf("round trip mismatch: got %v", got)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE-------"))); err == nil {
		t.Fatal("Read should reject bad magic")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecords()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Fatal("Read should report truncated record")
	}
}

func TestCollectBounded(t *testing.T) {
	s := NewSlice(sampleRecords())
	got, err := Collect(s, 2)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("Collect(2) returned %d records", got.Len())
	}
}

func TestCollectAll(t *testing.T) {
	s := NewSlice(sampleRecords())
	got, err := Collect(s, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if got.Len() != len(sampleRecords()) {
		t.Fatalf("Collect(0) returned %d records, want %d", got.Len(), len(sampleRecords()))
	}
}

// TestRoundTripQuick property: any record slice survives the binary
// round trip unchanged.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, int(n))
		for i := range recs {
			recs[i] = Record{
				PC:          mem.Addr(rng.Uint64()),
				Addr:        mem.Addr(rng.Uint64()),
				IsWrite:     rng.Intn(2) == 0,
				DependsPrev: rng.Intn(2) == 0,
				NonMem:      uint16(rng.Intn(65536)),
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFileReaderStreams(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sampleRecords() {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %v, want %v", i, got, want)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at end, got %v", err)
	}
}

func TestFileReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("BADMAGIC"))); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestFileReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-3]
	fr, err := NewFileReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, lastErr = fr.Next()
		if lastErr != nil {
			break
		}
	}
	if errors.Is(lastErr, io.EOF) {
		t.Fatal("truncation must not be silently treated as EOF")
	}
}

func TestOffsetReader(t *testing.T) {
	s := NewSlice(sampleRecords())
	o := NewOffset(s, 0x1000)
	r, err := o.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r.Addr != sampleRecords()[0].Addr+0x1000 {
		t.Fatal("offset not applied")
	}
	o.Reset()
	r2, _ := o.Next()
	if r2 != r {
		t.Fatal("Reset should restart the shifted stream")
	}
}

func TestNewSliceAt(t *testing.T) {
	s := NewSliceAt(sampleRecords(), 2)
	r, _ := s.Next()
	if r != sampleRecords()[2] {
		t.Fatal("NewSliceAt should start mid-stream")
	}
	// Wraps modulo length.
	s2 := NewSliceAt(sampleRecords(), 5)
	r2, _ := s2.Next()
	if r2 != sampleRecords()[2] {
		t.Fatal("start index should wrap")
	}
	// Empty records tolerated.
	e := NewSliceAt(nil, 3)
	if _, err := e.Next(); !errors.Is(err, io.EOF) {
		t.Fatal("empty slice should EOF")
	}
}
