// Package trace defines the instruction-trace format replayed by the
// simulated cores, plus readers, writers, and helpers for composing
// and transforming traces.
//
// A trace is a sequence of Records. Each Record describes one memory
// instruction together with the number of non-memory instructions that
// precede it, which lets the core model account for every instruction
// in the original program without storing them all. This mirrors how
// ChampSim traces carry full instruction streams, compressed to what
// the memory system needs.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"care/internal/mem"
)

// ErrCorrupt marks a structurally invalid trace: bad magic, a
// truncated record, or an underlying read failure mid-stream. Callers
// can match it with errors.Is to distinguish malformed input from a
// cleanly exhausted trace (io.EOF).
var ErrCorrupt = errors.New("trace: corrupt trace")

// Record is one memory instruction in a trace.
type Record struct {
	// PC is the program counter of the memory instruction.
	PC mem.Addr
	// Addr is the virtual address accessed.
	Addr mem.Addr
	// IsWrite marks stores.
	IsWrite bool
	// DependsPrev marks a load whose address depends on the previous
	// memory instruction's result (pointer chasing). The core model
	// serialises such accesses, which is what creates isolated
	// (high-PMC) misses as opposed to overlapped (low-PMC) ones.
	DependsPrev bool
	// NonMem is the number of non-memory instructions retired
	// immediately before this one.
	NonMem uint16
}

// Kind returns the access kind of the record.
func (r Record) Kind() mem.Kind {
	if r.IsWrite {
		return mem.Store
	}
	return mem.Load
}

// Instructions returns the number of instructions this record accounts
// for: the memory instruction itself plus its NonMem predecessors.
func (r Record) Instructions() uint64 { return uint64(r.NonMem) + 1 }

// Reader produces trace records one at a time. Next returns io.EOF
// when the trace is exhausted. Implementations must be deterministic:
// two readers produced from the same source yield identical streams.
type Reader interface {
	Next() (Record, error)
}

// Resetter is implemented by readers that can restart from the
// beginning. The simulator uses it to replay a benchmark that finished
// early in a mixed workload (paper §VI: "it is replayed until each
// benchmark has finished running").
type Resetter interface {
	Reset()
}

// Bounded is implemented by readers that can promise future progress:
// RemainingRecords returns an n such that the next n calls to Next
// are guaranteed to succeed (no EOF, no error), plus whether any such
// bound is known. Unbounded streams (loops over non-empty sources,
// synthetic generators) return (math.MaxUint64, true).
//
// The bound must never overestimate: the parallel simulation engine
// sizes its epochs with it, and an optimistic answer would let lanes
// tick past the cycle at which a core's stream actually ended,
// breaking byte-identity with the sequential loop. Readers that
// cannot promise anything simply do not implement the interface (or
// return false), which degrades the engine to single-cycle epochs
// rather than to wrong answers.
type Bounded interface {
	RemainingRecords() (uint64, bool)
}

// Slice is an in-memory trace. It implements Reader and Resetter.
type Slice struct {
	Records []Record
	pos     int
}

// NewSlice wraps records in a replayable reader.
func NewSlice(records []Record) *Slice { return &Slice{Records: records} }

// NewSliceAt wraps records starting from position start (mod len).
// Multi-copy workloads use it to desynchronise identical traces, like
// the paper's unsynchronised trace starts (§VI).
func NewSliceAt(records []Record, start int) *Slice {
	if len(records) > 0 {
		start %= len(records)
	} else {
		start = 0
	}
	return &Slice{Records: records, pos: start}
}

// Next implements Reader.
func (s *Slice) Next() (Record, error) {
	if s.pos >= len(s.Records) {
		return Record{}, io.EOF
	}
	r := s.Records[s.pos]
	s.pos++
	return r, nil
}

// Reset implements Resetter.
func (s *Slice) Reset() { s.pos = 0 }

// RemainingRecords implements Bounded: exactly the unread suffix.
func (s *Slice) RemainingRecords() (uint64, bool) {
	return uint64(len(s.Records) - s.pos), true
}

// Len returns the number of records.
func (s *Slice) Len() int { return len(s.Records) }

// Instructions returns the total instruction count of the trace.
func (s *Slice) Instructions() uint64 {
	var n uint64
	for _, r := range s.Records {
		n += r.Instructions()
	}
	return n
}

// Looping wraps a Reader+Resetter so that it never returns io.EOF:
// when the underlying trace ends it restarts from the beginning. Wraps
// counts completed passes.
type Looping struct {
	src   Reader
	Wraps int
}

// NewLooping returns a looping view of src, which must also implement
// Resetter.
func NewLooping(src Reader) *Looping {
	if _, ok := src.(Resetter); !ok {
		panic("trace: NewLooping requires a Resetter")
	}
	return &Looping{src: src}
}

// Next implements Reader; it only fails if the source trace is empty.
func (l *Looping) Next() (Record, error) {
	rec, err := l.src.Next()
	if err == nil {
		return rec, nil
	}
	if !errors.Is(err, io.EOF) {
		return Record{}, err
	}
	l.src.(Resetter).Reset()
	l.Wraps++
	rec, err = l.src.Next()
	if err != nil {
		return Record{}, fmt.Errorf("trace: empty looping source: %w", err)
	}
	return rec, nil
}

// Reset implements Resetter.
func (l *Looping) Reset() {
	l.src.(Resetter).Reset()
	l.Wraps = 0
}

// RemainingRecords implements Bounded: a loop over a provably
// non-empty source never ends. An exhausted bounded source still
// loops forever as long as the full trace is non-empty, which Len
// establishes; otherwise no promise is made.
func (l *Looping) RemainingRecords() (uint64, bool) {
	if b, ok := l.src.(Bounded); ok {
		if n, known := b.RemainingRecords(); known && n > 0 {
			return math.MaxUint64, true
		}
	}
	if s, ok := l.src.(interface{ Len() int }); ok && s.Len() > 0 {
		return math.MaxUint64, true
	}
	return 0, false
}

// Generator adapts a pure function to the Reader interface. Generators
// are how synthetic workloads avoid materialising giant traces; the
// function must be deterministic given its captured state.
type Generator struct {
	fn    func() (Record, error)
	reset func()
}

// NewGenerator builds a Reader from next/reset functions. reset may be
// nil for non-resettable generators.
func NewGenerator(next func() (Record, error), reset func()) *Generator {
	return &Generator{fn: next, reset: reset}
}

// Next implements Reader.
func (g *Generator) Next() (Record, error) { return g.fn() }

// Reset implements Resetter; it panics if the generator was built
// without a reset function.
func (g *Generator) Reset() {
	if g.reset == nil {
		panic("trace: generator is not resettable")
	}
	g.reset()
}

// binary trace file format:
//
//	magic "CARETRC1" (8 bytes)
//	then repeated records, little-endian:
//	  pc   uint64
//	  addr uint64
//	  flags uint16 (bit0 = write)
//	  nonmem uint16
var magic = [8]byte{'C', 'A', 'R', 'E', 'T', 'R', 'C', '1'}

const recordSize = 8 + 8 + 2 + 2

// Write serialises records to w in the binary trace format.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	var buf [recordSize]byte
	for _, r := range records {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.PC))
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Addr))
		var flags uint16
		if r.IsWrite {
			flags |= 1
		}
		if r.DependsPrev {
			flags |= 2
		}
		binary.LittleEndian.PutUint16(buf[16:], flags)
		binary.LittleEndian.PutUint16(buf[18:], r.NonMem)
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	return bw.Flush()
}

// Read deserialises an entire binary trace from r.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: read magic: %v", ErrCorrupt, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic (not a CARE trace file)", ErrCorrupt)
	}
	var records []Record
	var buf [recordSize]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if errors.Is(err, io.EOF) {
			return records, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: read record: %v", ErrCorrupt, err)
		}
		flags := binary.LittleEndian.Uint16(buf[16:])
		records = append(records, Record{
			PC:          mem.Addr(binary.LittleEndian.Uint64(buf[0:])),
			Addr:        mem.Addr(binary.LittleEndian.Uint64(buf[8:])),
			IsWrite:     flags&1 != 0,
			DependsPrev: flags&2 != 0,
			NonMem:      binary.LittleEndian.Uint16(buf[18:]),
		})
	}
}

// OffsetReader shifts every record's address by a fixed delta. It
// gives each copy of a multi-copy workload its own address space, as
// separate processes would have.
type OffsetReader struct {
	src   Reader
	delta mem.Addr
}

// NewOffset wraps src, adding delta to every address.
func NewOffset(src Reader, delta mem.Addr) *OffsetReader {
	return &OffsetReader{src: src, delta: delta}
}

// Next implements Reader.
func (o *OffsetReader) Next() (Record, error) {
	r, err := o.src.Next()
	if err != nil {
		return Record{}, err
	}
	r.Addr += o.delta
	return r, nil
}

// Reset implements Resetter when the source supports it.
func (o *OffsetReader) Reset() { o.src.(Resetter).Reset() }

// RemainingRecords implements Bounded when the source does: shifting
// addresses never changes how many records succeed.
func (o *OffsetReader) RemainingRecords() (uint64, bool) {
	if b, ok := o.src.(Bounded); ok {
		return b.RemainingRecords()
	}
	return 0, false
}

// FileReader streams records from a binary trace without
// materialising them, for traces too large to hold in memory. It
// implements Reader; it does not implement Resetter (wrap the
// materialised form from Read for replay).
type FileReader struct {
	br  *bufio.Reader
	buf [recordSize]byte
}

// NewFileReader validates the magic header and returns a streaming
// reader over r.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: read magic: %v", ErrCorrupt, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic (not a CARE trace file)", ErrCorrupt)
	}
	return &FileReader{br: br}, nil
}

// Next implements Reader.
func (f *FileReader) Next() (Record, error) {
	if _, err := io.ReadFull(f.br, f.buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: read record: %v", ErrCorrupt, err)
	}
	flags := binary.LittleEndian.Uint16(f.buf[16:])
	return Record{
		PC:          mem.Addr(binary.LittleEndian.Uint64(f.buf[0:])),
		Addr:        mem.Addr(binary.LittleEndian.Uint64(f.buf[8:])),
		IsWrite:     flags&1 != 0,
		DependsPrev: flags&2 != 0,
		NonMem:      binary.LittleEndian.Uint16(f.buf[18:]),
	}, nil
}

// Collect drains up to n records from a Reader into a Slice. It stops
// early at io.EOF. n <= 0 collects until EOF (beware unbounded
// generators).
func Collect(r Reader, n int) (*Slice, error) {
	var out []Record
	for n <= 0 || len(out) < n {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return NewSlice(out), nil
}
