package trace

import (
	"bytes"
	"testing"
)

// FuzzRead exercises the binary trace parser on arbitrary input: it
// must never panic, and every trace it accepts must round-trip.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("CARETRC1"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, recs); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length: %d -> %d", len(recs), len(again))
		}
	})
}

// FuzzFileReader does the same for the streaming reader.
func FuzzFileReader(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := fr.Next(); err != nil {
				return
			}
		}
	})
}
