// Package dram models the main memory behind the LLC: channels,
// ranks, banks, open-row policy, and the tRP/tRCD/tCAS timing of the
// paper's configuration (Table VII). The model is deliberately simple
// — FCFS scheduling with per-bank row state and a shared data bus per
// channel — but it produces the property the paper's evaluation
// depends on: variable, contention-sensitive miss latencies that
// create miss-miss and hit-miss overlapping at the LLC.
package dram

import (
	"fmt"

	"care/internal/mem"
)

// Params configures the memory system. All timings are in CPU cycles.
type Params struct {
	// Channels is the number of independent channels (1 single-core,
	// 2 multi-core in the paper).
	Channels int
	// BanksPerChannel is the number of banks behind each channel.
	BanksPerChannel int
	// RowBytes is the DRAM row (page) size per bank.
	RowBytes int
	// TRP, TRCD, TCAS are precharge, activate, and CAS latencies.
	TRP, TRCD, TCAS uint64
	// BurstCycles is the data-bus occupancy of one 64-byte block.
	BurstCycles uint64
}

// DefaultParams returns the paper's DRAM configuration converted to
// 4 GHz CPU cycles: tRP=15ns=60, tRCD=15ns=60, tCAS=12.5ns=50; a
// 64-bit 2400MT/s channel moves 64B in ~13 cycles.
func DefaultParams(channels int) Params {
	return Params{
		Channels:        channels,
		BanksPerChannel: 16,
		RowBytes:        8192,
		TRP:             60,
		TRCD:            60,
		TCAS:            50,
		BurstCycles:     13,
	}
}

// Stats counts memory traffic.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	TotalReadLatency   uint64
	MaxQueued          int
}

// MeanReadLatency returns the average read service latency in cycles.
func (s *Stats) MeanReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.Reads)
}

type bank struct {
	openRow   uint64
	hasOpen   bool
	busyUntil uint64
}

type channel struct {
	banks    []bank
	busUntil uint64
}

type pending struct {
	req   *mem.Request
	ready uint64
}

// writeQueueHigh is the buffered-write count that forces drain mode
// even while reads are pending (per controller).
const writeQueueHigh = 32

// DRAM is the memory controller + devices. It implements cache.Level.
type DRAM struct {
	Params
	channels []channel
	inflight []pending
	// writeQ buffers posted writes; the controller drains them
	// opportunistically (when no reads are in flight) or in bursts
	// once the queue passes the high watermark, so writeback-heavy
	// policies do not serialise demand reads behind writes. The queue
	// is writeQ[wqHead:]; draining advances wqHead and the backing
	// array is reused once the queue empties, so the steady state
	// allocates nothing.
	writeQ []mem.Addr
	wqHead int
	// minReady caches the earliest completion among inflight reads so
	// Tick can return without scanning on idle cycles.
	minReady uint64
	stats    Stats

	// Precomputed address-routing masks and shifts, valid when
	// Channels, BanksPerChannel, and the blocks-per-row count are all
	// powers of two (the paper's configuration); route then replaces
	// its divisions with masking.
	routePow2 bool
	chanMask  uint64
	chanShift uint
	bankMask  uint64
	bankShift uint
	rowShift  uint
}

// New builds a DRAM model.
func New(p Params) *DRAM {
	if p.Channels <= 0 || p.BanksPerChannel <= 0 || p.RowBytes <= 0 {
		panic(fmt.Sprintf("dram: invalid params %+v", p))
	}
	d := &DRAM{Params: p, channels: make([]channel, p.Channels)}
	for i := range d.channels {
		d.channels[i].banks = make([]bank, p.BanksPerChannel)
	}
	rowBlocks := p.RowBytes / mem.BlockSize
	if isPow2(p.Channels) && isPow2(p.BanksPerChannel) && rowBlocks > 0 && isPow2(rowBlocks) {
		d.routePow2 = true
		d.chanMask = uint64(p.Channels - 1)
		d.chanShift = log2(p.Channels)
		d.bankMask = uint64(p.BanksPerChannel - 1)
		d.bankShift = log2(p.BanksPerChannel)
		d.rowShift = log2(rowBlocks)
	}
	return d
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// Stats returns the live counters.
func (d *DRAM) Stats() *Stats { return &d.stats }

// ResetStats zeroes the counters (end of warmup) without touching
// bank state or in-flight reads.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// route maps a block address to (channel, bank, row). Channel and
// bank interleave on block bits so sequential streams spread across
// the system; the row is the address within a bank.
func (d *DRAM) route(a mem.Addr) (ch, bk int, row uint64) {
	blk := a.BlockID()
	if d.routePow2 {
		ch = int(blk & d.chanMask)
		blk >>= d.chanShift
		bk = int(blk & d.bankMask)
		blk >>= d.bankShift
		row = blk >> d.rowShift
		return
	}
	ch = int(blk % uint64(d.Channels))
	blk /= uint64(d.Channels)
	bk = int(blk % uint64(d.BanksPerChannel))
	blk /= uint64(d.BanksPerChannel)
	rowBlocks := uint64(d.RowBytes / mem.BlockSize)
	row = blk / rowBlocks
	return
}

// service runs one block access through the bank/bus timing and
// returns its completion cycle.
func (d *DRAM) service(addr mem.Addr, cycle uint64) uint64 {
	ch, bk, row := d.route(addr)
	c := &d.channels[ch]
	b := &c.banks[bk]

	start := cycle
	if b.busyUntil > start {
		start = b.busyUntil
	}

	var access uint64
	switch {
	case b.hasOpen && b.openRow == row:
		access = d.TCAS
		d.stats.RowHits++
	case b.hasOpen:
		access = d.TRP + d.TRCD + d.TCAS
		d.stats.RowMisses++
	default:
		access = d.TRCD + d.TCAS
		d.stats.RowMisses++
	}

	dataStart := start + access
	if c.busUntil > dataStart {
		dataStart = c.busUntil
	}
	done := dataStart + d.BurstCycles
	c.busUntil = done
	b.busyUntil = done
	b.openRow = row
	b.hasOpen = true
	return done
}

// Access implements the Level interface. Reads respond through the
// request's Done callback after the modelled latency; writes are
// posted into the write queue (they respond immediately and occupy
// device time only when drained).
func (d *DRAM) Access(req *mem.Request, cycle uint64) {
	if req.Kind == mem.Writeback {
		d.stats.Writes++
		d.writeQ = append(d.writeQ, req.Addr)
		req.Respond(cycle)
		req.Release()
		return
	}
	done := d.service(req.Addr, cycle)
	d.stats.Reads++
	d.stats.TotalReadLatency += done - cycle
	if len(d.inflight) == 0 || done < d.minReady {
		d.minReady = done
	}
	d.inflight = append(d.inflight, pending{req: req, ready: done})
	if len(d.inflight) > d.stats.MaxQueued {
		d.stats.MaxQueued = len(d.inflight)
	}
}

// drainWrites issues buffered writes when reads are idle or the
// queue is past the high watermark (read-priority scheduling).
func (d *DRAM) drainWrites(cycle uint64) {
	queued := len(d.writeQ) - d.wqHead
	if queued == 0 {
		return
	}
	if len(d.inflight) == 0 || queued >= writeQueueHigh {
		// Drain a small burst to amortise row activations.
		n := 2
		if n > queued {
			n = queued
		}
		for i := 0; i < n; i++ {
			d.service(d.writeQ[d.wqHead+i], cycle)
		}
		d.wqHead += n
		if d.wqHead == len(d.writeQ) {
			d.writeQ = d.writeQ[:0]
			d.wqHead = 0
		}
	}
}

// Tick delivers completed reads and drains buffered writes. It must
// be called once per cycle.
func (d *DRAM) Tick(cycle uint64) {
	d.drainWrites(cycle)
	if len(d.inflight) == 0 || cycle < d.minReady {
		return
	}
	rest := d.inflight[:0]
	next := ^uint64(0)
	for _, p := range d.inflight {
		if p.ready <= cycle {
			p.req.Respond(cycle)
			p.req.Release()
		} else {
			if p.ready < next {
				next = p.ready
			}
			rest = append(rest, p)
		}
	}
	for i := len(rest); i < len(d.inflight); i++ {
		d.inflight[i] = pending{} // drop released request pointers
	}
	d.inflight = rest
	d.minReady = next
}

// Drained reports whether no reads are in flight.
func (d *DRAM) Drained() bool { return len(d.inflight) == 0 }

// MinReady returns the earliest completion cycle among in-flight
// reads and whether any read is in flight. The parallel engine uses
// it to bound epochs: no read response can be delivered before this
// cycle.
func (d *DRAM) MinReady() (uint64, bool) {
	if len(d.inflight) == 0 {
		return 0, false
	}
	return d.minReady, true
}

// PendingReads returns the number of reads in flight, for the
// watchdog's diagnostic dump.
func (d *DRAM) PendingReads() int { return len(d.inflight) }

// QueuedWrites returns the posted-write queue depth.
func (d *DRAM) QueuedWrites() int { return len(d.writeQ) - d.wqHead }

// QueueDepth returns the total controller backlog — reads in flight
// plus buffered writes — the congestion signal the telemetry collector
// samples at interval boundaries.
func (d *DRAM) QueueDepth() int { return len(d.inflight) + d.QueuedWrites() }
