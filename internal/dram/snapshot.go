package dram

import (
	"encoding/gob"
	"fmt"

	"care/internal/checkpoint"
	"care/internal/mem"
)

func init() { gob.Register(State{}) }

// BankState mirrors one bank's open-row and timing state.
type BankState struct {
	OpenRow   uint64
	HasOpen   bool
	BusyUntil uint64
}

// ChannelState mirrors one channel's banks and data-bus occupancy.
type ChannelState struct {
	Banks    []BankState
	BusUntil uint64
}

// State is the DRAM model's checkpointable state at a quiescent point
// (no reads in flight; posted writes are plain addresses and are
// carried over).
type State struct {
	Channels []ChannelState
	WriteQ   []mem.Addr
	MinReady uint64
	Stats    Stats
}

// Checkpointable reports whether the model can snapshot now. The
// error wraps checkpoint.ErrNotCheckpointable.
func (d *DRAM) Checkpointable() error {
	if len(d.inflight) != 0 {
		return fmt.Errorf("%w: dram has %d reads in flight",
			checkpoint.ErrNotCheckpointable, len(d.inflight))
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (d *DRAM) Snapshot() any {
	st := State{
		Channels: make([]ChannelState, len(d.channels)),
		WriteQ:   append([]mem.Addr(nil), d.writeQ[d.wqHead:]...),
		MinReady: d.minReady,
		Stats:    d.stats,
	}
	for i := range d.channels {
		ch := &d.channels[i]
		cs := ChannelState{Banks: make([]BankState, len(ch.banks)), BusUntil: ch.busUntil}
		for b, bk := range ch.banks {
			cs.Banks[b] = BankState{OpenRow: bk.openRow, HasOpen: bk.hasOpen, BusyUntil: bk.busyUntil}
		}
		st.Channels[i] = cs
	}
	return st
}

// Restore implements checkpoint.Snapshotter on an identically
// configured model.
func (d *DRAM) Restore(snap any) error {
	st, err := checkpoint.As[State](snap, "dram")
	if err != nil {
		return err
	}
	if len(st.Channels) != len(d.channels) {
		return checkpoint.Mismatchf("dram: snapshot has %d channels, model has %d", len(st.Channels), len(d.channels))
	}
	for i := range st.Channels {
		if len(st.Channels[i].Banks) != len(d.channels[i].banks) {
			return checkpoint.Mismatchf("dram: channel %d snapshot has %d banks, model has %d",
				i, len(st.Channels[i].Banks), len(d.channels[i].banks))
		}
	}
	for i := range st.Channels {
		cs := &st.Channels[i]
		d.channels[i].busUntil = cs.BusUntil
		for b, bk := range cs.Banks {
			d.channels[i].banks[b] = bank{openRow: bk.OpenRow, hasOpen: bk.HasOpen, busyUntil: bk.BusyUntil}
		}
	}
	d.writeQ = append(d.writeQ[:0], st.WriteQ...)
	d.wqHead = 0
	d.minReady = st.MinReady
	d.stats = st.Stats
	return nil
}
