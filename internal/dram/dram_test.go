package dram

import (
	"testing"
	"testing/quick"

	"care/internal/mem"
)

func drive(d *DRAM, upTo uint64) {
	for cy := uint64(0); cy <= upTo; cy++ {
		d.Tick(cy)
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero channels should panic")
		}
	}()
	New(Params{})
}

func TestRowMissThenRowHitLatency(t *testing.T) {
	p := DefaultParams(1)
	d := New(p)
	var first, second uint64
	d.Access(&mem.Request{Addr: 0x0, Kind: mem.Load, Done: func(cy uint64) { first = cy }}, 0)
	drive(d, 1000)
	// First access to a closed bank: tRCD + tCAS + burst.
	want := p.TRCD + p.TCAS + p.BurstCycles
	if first != want {
		t.Fatalf("closed-bank access at %d, want %d", first, want)
	}
	// Same row again: tCAS + burst only.
	d2 := New(p)
	done := make([]uint64, 2)
	d2.Access(&mem.Request{Addr: 0x0, Kind: mem.Load, Done: func(cy uint64) { done[0] = cy }}, 0)
	for cy := uint64(0); cy <= 2000; cy++ {
		d2.Tick(cy)
		if cy == 500 {
			// Same bank (stride = channels*banks blocks), same row.
			d2.Access(&mem.Request{Addr: mem.Addr(p.Channels * p.BanksPerChannel * mem.BlockSize), Kind: mem.Load, Done: func(c uint64) { done[1] = c }}, cy)
		}
	}
	second = done[1] - 500
	if wantHit := p.TCAS + p.BurstCycles; second != wantHit {
		t.Fatalf("row hit latency %d, want %d", second, wantHit)
	}
	if d2.Stats().RowHits != 1 || d2.Stats().RowMisses != 1 {
		t.Fatalf("row stats %+v", d2.Stats())
	}
}

func TestRowConflictLatency(t *testing.T) {
	p := DefaultParams(1)
	d := New(p)
	// Two different rows in the same bank, far apart in address space.
	rowStride := mem.Addr(uint64(p.RowBytes) * uint64(p.Channels) * uint64(p.BanksPerChannel))
	var d1, d2 uint64
	d.Access(&mem.Request{Addr: 0x0, Kind: mem.Load, Done: func(cy uint64) { d1 = cy }}, 0)
	drive(d, 2000)
	start := uint64(1000)
	for cy := uint64(0); cy <= 3000; cy++ {
		if cy == start {
			d.Access(&mem.Request{Addr: rowStride, Kind: mem.Load, Done: func(c uint64) { d2 = c }}, cy)
		}
		d.Tick(cy)
	}
	if d1 == 0 || d2 == 0 {
		t.Fatal("accesses did not complete")
	}
	if got, want := d2-start, p.TRP+p.TRCD+p.TCAS+p.BurstCycles; got != want {
		t.Fatalf("row conflict latency %d, want %d", got, want)
	}
}

func TestBankContentionSerialises(t *testing.T) {
	p := DefaultParams(1)
	d := New(p)
	rowStride := mem.Addr(uint64(p.RowBytes) * uint64(p.Channels) * uint64(p.BanksPerChannel))
	var done [2]uint64
	// Same bank, different rows, issued the same cycle.
	d.Access(&mem.Request{Addr: 0, Kind: mem.Load, Done: func(cy uint64) { done[0] = cy }}, 0)
	d.Access(&mem.Request{Addr: rowStride, Kind: mem.Load, Done: func(cy uint64) { done[1] = cy }}, 0)
	drive(d, 5000)
	if done[1] <= done[0] {
		t.Fatalf("second conflicting access should finish later: %v", done)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	p := DefaultParams(1)
	d := New(p)
	var done [2]uint64
	// Adjacent blocks map to different banks (block interleaving).
	d.Access(&mem.Request{Addr: 0, Kind: mem.Load, Done: func(cy uint64) { done[0] = cy }}, 0)
	d.Access(&mem.Request{Addr: mem.BlockSize, Kind: mem.Load, Done: func(cy uint64) { done[1] = cy }}, 0)
	drive(d, 5000)
	// Bank access overlaps; only the bus serialises, so the second
	// finishes one burst later, not a full access later.
	if done[1]-done[0] != p.BurstCycles {
		t.Fatalf("bank-parallel accesses should be bus-limited: %v (burst=%d)", done, p.BurstCycles)
	}
}

func TestWritesArePostedButOccupyBank(t *testing.T) {
	p := DefaultParams(1)
	d := New(p)
	responded := false
	d.Access(&mem.Request{Addr: 0, Kind: mem.Writeback, Done: func(uint64) { responded = true }}, 0)
	if !responded {
		t.Fatal("write should respond immediately (posted)")
	}
	if d.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
	// A read right behind the write to the same bank waits for it.
	var done uint64
	d.Access(&mem.Request{Addr: 0, Kind: mem.Load, Done: func(cy uint64) { done = cy }}, 1)
	drive(d, 5000)
	if done <= p.TCAS {
		t.Fatalf("read should queue behind posted write, done=%d", done)
	}
}

func TestMeanReadLatency(t *testing.T) {
	d := New(DefaultParams(2))
	d.Access(&mem.Request{Addr: 0, Kind: mem.Load}, 0)
	drive(d, 1000)
	if d.Stats().MeanReadLatency() <= 0 {
		t.Fatal("mean read latency should be positive")
	}
	var empty Stats
	if empty.MeanReadLatency() != 0 {
		t.Fatal("zero reads must not divide by zero")
	}
}

func TestRouteProperties(t *testing.T) {
	d := New(DefaultParams(2))
	f := func(raw uint64) bool {
		ch, bk, _ := d.route(mem.Addr(raw))
		return ch >= 0 && ch < d.Channels && bk >= 0 && bk < d.BanksPerChannel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Same block must always route identically.
	a := mem.Addr(0x12345600)
	c1, b1, r1 := d.route(a)
	c2, b2, r2 := d.route(a + 13) // same block, different offset
	if c1 != c2 || b1 != b2 || r1 != r2 {
		t.Fatal("routing must be block-granular")
	}
}

func TestDrained(t *testing.T) {
	d := New(DefaultParams(1))
	if !d.Drained() {
		t.Fatal("fresh DRAM should be drained")
	}
	d.Access(&mem.Request{Addr: 0, Kind: mem.Load}, 0)
	if d.Drained() {
		t.Fatal("in-flight read should block drain")
	}
	drive(d, 1000)
	if !d.Drained() {
		t.Fatal("should drain after completion")
	}
}
