package care_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"care"
)

func mcf4(tb testing.TB) []care.TraceReader {
	tb.Helper()
	traces := make([]care.TraceReader, 4)
	for i := range traces {
		traces[i] = care.MustSPECTrace("429.mcf", uint64(i+1), 16)
	}
	return traces
}

func mcfConfig() care.SystemConfig {
	cfg := care.ScaledConfig(4, 16)
	cfg.LLCPolicy = care.PolicyCARE
	cfg.Prefetch = true
	return cfg
}

// TestRunMatchesRunSimulation pins the deprecation contract: the old
// positional entry point and the new option-struct one produce
// byte-identical results for the same schedule.
func TestRunMatchesRunSimulation(t *testing.T) {
	want, err := care.RunSimulation(mcfConfig(), mcf4(t), 5_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := care.Run(context.Background(), mcfConfig(), mcf4(t),
		care.RunOpts{Warmup: 5_000, Measure: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Run diverged from RunSimulation:\nRun:           %+v\nRunSimulation: %+v", got, want)
	}
}

// TestRunContextCancellation: a cancelled context interrupts the run,
// surfacing both ErrInterrupted and the context's error.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must stop at its first guard point
	_, err := care.Run(ctx, mcfConfig(), mcf4(t), care.RunOpts{Measure: 5_000_000})
	if !errors.Is(err, care.ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want the context.Canceled cause attached", err)
	}
}

// TestRunUnknownPolicyTypedError: config validation rejects a bad
// policy with the typed error before any simulation work happens.
func TestRunUnknownPolicyTypedError(t *testing.T) {
	cfg := mcfConfig()
	cfg.LLCPolicy = "definitely-not-a-policy"
	_, err := care.Run(context.Background(), cfg, mcf4(t), care.RunOpts{Measure: 1000})
	var unknown *care.ErrUnknownPolicy
	if !errors.As(err, &unknown) {
		t.Fatalf("got %v, want *ErrUnknownPolicy", err)
	}
	if unknown.Name != "definitely-not-a-policy" {
		t.Fatalf("error names %q", unknown.Name)
	}
}

// TestRunWithCheckpointSchedule: RunOpts.Checkpoint writes a
// checkpoint file, and — per the sim-level contract that Every, not
// Path, determines the executed schedule — a run that checkpoints to
// disk is byte-identical to one running the same schedule without
// writing anything.
func TestRunWithCheckpointSchedule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := care.Run(context.Background(), mcfConfig(), mcf4(t), care.RunOpts{
		Warmup:     5_000,
		Measure:    20_000,
		Checkpoint: &care.CheckpointOptions{Path: path, Every: 5_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	sameSchedule, err := care.Run(context.Background(), mcfConfig(), mcf4(t), care.RunOpts{
		Warmup:     5_000,
		Measure:    20_000,
		Checkpoint: &care.CheckpointOptions{Every: 5_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ckpt, sameSchedule) {
		t.Fatalf("same checkpoint schedule diverged:\nwith path: %+v\nwithout:   %+v", ckpt, sameSchedule)
	}
}

// TestRunTelemetryOption: RunOpts.Telemetry attaches the collector.
func TestRunTelemetryOption(t *testing.T) {
	col := care.NewTelemetryCollector(care.TelemetryOptions{Interval: 2_000, Sink: care.NewTelemetryMemory()})
	if _, err := care.Run(context.Background(), mcfConfig(), mcf4(t),
		care.RunOpts{Warmup: 5_000, Measure: 20_000, Telemetry: col}); err != nil {
		t.Fatal(err)
	}
	if col.Count() == 0 {
		t.Fatal("collector sampled no intervals")
	}
}
